package chaos

import (
	"fmt"
	"time"

	"repro/internal/cluster"
	"repro/internal/directory"
	"repro/internal/monitor"
	"repro/internal/netsim"
	"repro/internal/pbx"
	"repro/internal/sipp"
	"repro/internal/stats"
	"repro/internal/telemetry"
	"repro/internal/transport"
)

// OpKind is a process-level fault operation.
type OpKind int

// Process-level fault operations.
const (
	// CrashServer kills a backend at the scheduled tick: socket,
	// timers, transactions and in-flight calls vanish at once.
	CrashServer OpKind = iota
	// RestartServer re-binds a crashed backend's address, recovers its
	// CDR journal (interrupted records close as LOST), and lets health
	// probes re-admit it with slow-start weighting.
	RestartServer
	// DrainServer puts a backend in administrative drain: 503s on new
	// INVITEs and health probes while established calls finish.
	DrainServer
)

func (k OpKind) String() string {
	switch k {
	case CrashServer:
		return "crash"
	case RestartServer:
		return "restart"
	case DrainServer:
		return "drain"
	default:
		return "unknown"
	}
}

// Op schedules one process-level fault at an absolute virtual tick.
type Op struct {
	At      time.Duration
	Kind    OpKind
	Backend int
}

// ClusterScenario is a chaos experiment against a balancer-fronted
// PBX farm: offered load plus a script of crash/restart/drain ops.
type ClusterScenario struct {
	Name string
	Desc string
	// Seed makes the run reproducible; it feeds the network, balancer,
	// backends and generator RNGs (with distinct salts).
	Seed uint64
	// Servers is the backend count; PerServer each backend's config.
	Servers   int
	PerServer pbx.Config
	// Policy selects placement, Health the liveness probing.
	Policy cluster.Policy
	Health cluster.HealthConfig
	// Load is the offered traffic, pointed at the balancer.
	Load sipp.Config
	// Ops is the fault script.
	Ops []Op
	// Shards, when > 1, runs the scenario on the partitioned engine:
	// the balancer and its backends share one shard (placement reads
	// backend state synchronously), the generator banks another.
	// Results are bit-identical to the single-scheduler run.
	Shards int
}

// BackendReport is one backend's post-run accounting, aggregated
// across every incarnation a crash/restart cycle produced.
type BackendReport struct {
	Host string
	// Counters sums the PBX counters of all incarnations — the view an
	// external collector keeps even when the process dies.
	Counters pbx.Counters
	// Journal is the CDR WAL's record totals; Committed its durable
	// records (normal ends plus LOST recoveries); Recovered just the
	// LOST records closed by restart (or post-mortem) recovery.
	Journal   pbx.JournalStats
	Committed []pbx.CDR
	Recovered []pbx.CDR
	// OpenAtCrash is how many calls were in flight at the most recent
	// crash — each must reappear as exactly one LOST record.
	OpenAtCrash int
	Crashes     int
	// Leak detectors, summed across incarnations after the drain.
	ActiveChannels     int
	ActiveTransactions int
	ActiveSpans        int
}

// ClusterResult is everything a cluster chaos run observed.
type ClusterResult struct {
	Scenario string
	Load     sipp.Results
	Balancer cluster.Counters
	// Events is the deterministic failure/recovery timeline: scheduled
	// ops plus the probe-observed down/up transitions.
	Events   []cluster.Event
	Backends []BackendReport
	// NoRoute counts packets that hit an unbound port — a crashed
	// server's blackholed signalling and media.
	NoRoute uint64
	// PoolGets/PoolPuts are the packet pool's lifetime counters summed
	// over shards; gets != puts after the drain is a buffer leak.
	PoolGets, PoolPuts uint64
	Telemetry          telemetry.Snapshot
	Series             []monitor.Sample
}

// RunCluster executes one cluster scenario to completion.
func RunCluster(sc ClusterScenario) (*ClusterResult, error) {
	k := sc.Shards
	if k < 1 {
		k = 1
	}
	// The balancer and every backend share a shard: placement decisions
	// read backend channel occupancy synchronously. The generator banks
	// take another; all cross-shard traffic rides default 1 ms links.
	farm := []string{"balancer"}
	for i := 0; i < sc.Servers; i++ {
		farm = append(farm, fmt.Sprintf("pbx%d", i+1))
	}
	groups := [][]string{farm, {ClientHost, ServerHost}}
	group := netsim.NewShardGroup(k)
	hostShard := netsim.AssignShards(sc.Seed, groups, k)
	net := netsim.NewShardedNetwork(group, stats.NewRNG(sc.Seed^0xc4a05), hostShard)
	net.SetDefaultProfile(netsim.LinkProfile{Delay: time.Millisecond})
	farmSched := net.SchedulerFor("balancer")
	clock := transport.SimClock{Sched: farmSched}

	reg := telemetry.NewRegistry()
	monitor.RegisterScheduler(reg, group)

	pbxCfg := sc.PerServer
	if pbxCfg.Seed == 0 {
		pbxCfg.Seed = sc.Seed ^ 0x9b
	}
	if sc.Load.Media == sipp.MediaPacketized {
		pbxCfg.RelayRTP = true
	}
	pbxCfg.Telemetry = reg

	cl := cluster.New(net, clock, cluster.Config{
		Servers:   sc.Servers,
		PerServer: pbxCfg,
		Policy:    sc.Policy,
		Health:    sc.Health,
		Journal:   true,
		Seed:      sc.Seed ^ 0xba1a,
		Telemetry: reg,
	})
	cl.Directory().AddUser(directory.User{Username: "uac", Password: "pw-uac"})
	target := sc.Load.Target
	if target == "" {
		target = "uas"
	}
	cl.Directory().AddUser(directory.User{Username: target, Password: "pw-" + target})

	loadCfg := sc.Load
	if loadCfg.Seed == 0 {
		loadCfg.Seed = sc.Seed ^ 0x51
	}
	loadCfg.Telemetry = reg
	gen := sipp.New(net, ClientHost, ServerHost, cl.Addr(), loadCfg)

	for _, op := range sc.Ops {
		op := op
		farmSched.At(op.At, func(time.Duration) {
			switch op.Kind {
			case CrashServer:
				cl.CrashBackend(op.Backend)
			case RestartServer:
				cl.RestartBackend(op.Backend)
			case DrainServer:
				cl.DrainBackend(op.Backend)
			}
		})
	}

	sampler := monitor.NewSampler(reg, clock)
	sampler.Start()

	genSched := net.SchedulerFor(ClientHost)
	genShard := net.ShardOf(ClientHost)
	var out sipp.Results
	done := false
	gen.Start(func(r sipp.Results) {
		out = r
		done = true
		// The sampler lives on the farm shard; stop it via a barrier
		// control stamped with the decision time (see Sampler.StopAt).
		doneAt := genSched.Now()
		group.Control(genShard, func() { sampler.StopAt(doneAt) })
	})
	for i := 0; i < 200 && !done; i++ {
		if err := group.Run(group.Now() + 10*time.Minute); err != nil {
			return nil, err
		}
	}
	if !done {
		return nil, fmt.Errorf("chaos: cluster scenario %q did not finish", sc.Name)
	}
	// Stop the probe plane before the drain tail: its steady OPTIONS
	// traffic keeps lingering server transactions alive on every
	// backend, which would read as a leak below.
	cl.StopProbes()
	if err := group.Run(group.Now() + drainTail); err != nil {
		return nil, err
	}

	res := &ClusterResult{
		Scenario: sc.Name,
		Load:     out,
		NoRoute:  net.NoRoute(),
	}
	res.PoolGets, res.PoolPuts = net.PoolStats()
	for i := 0; i < sc.Servers; i++ {
		rep := BackendReport{Host: fmt.Sprintf("pbx%d", i+1)}
		recovered := cl.Recovered(i)
		if cl.Crashed(i) {
			// The scenario ended with the backend still dead: run the
			// post-mortem recovery pass so its interrupted calls are
			// accounted for, exactly as a restart would have.
			lost := cl.Journal(i).Recover(clock.Now())
			cl.Backends()[i].RecordRecovered(lost)
			recovered = append(recovered, lost...)
		}
		rep.Recovered = recovered
		rep.OpenAtCrash = cl.OpenAtCrash(i)
		for _, srv := range cl.Incarnations(i) {
			c := srv.CountersSnapshot()
			rep.Counters.Attempts += c.Attempts
			rep.Counters.Established += c.Established
			rep.Counters.Blocked += c.Blocked
			rep.Counters.Rejected += c.Rejected
			rep.Counters.Completed += c.Completed
			rep.Counters.Canceled += c.Canceled
			rep.Counters.Failed += c.Failed
			rep.Counters.DrainRejected += c.DrainRejected
			rep.ActiveTransactions += srv.ActiveTransactions()
			rep.ActiveSpans += srv.ActiveSpans()
		}
		rep.Crashes = len(cl.Incarnations(i)) - 1
		live := cl.Backends()[i]
		rep.ActiveChannels = live.ActiveChannels()
		if j := cl.Journal(i); j != nil {
			rep.Journal = j.Stats()
			rep.Committed = j.Committed()
		}
		res.Backends = append(res.Backends, rep)
	}
	// Snapshot balancer state before Close (Close terminates probes).
	res.Balancer = cl.CountersSnapshot()
	res.Events = cl.Events()
	cl.Close()
	res.Telemetry = reg.Snapshot()
	res.Series = sampler.Samples()
	return res, nil
}

// CheckInvariants returns the violated invariants (empty = healthy).
// Beyond the single-server harness's leak checks, the cluster run
// must prove crash-consistent accounting:
//
//   - no channel, transaction or span leak on any incarnation of any
//     backend — a crash must not strand a span in "open";
//   - the CDR journal balances: every begin has exactly one end
//     (normal or LOST), no entry is still open after recovery, and no
//     record was ever double-ended;
//   - the calls in flight at a crash reappear as exactly that many
//     LOST records;
//   - generator accounting conserves calls.
func (r *ClusterResult) CheckInvariants() []string {
	var bad []string
	if r.PoolGets != r.PoolPuts {
		bad = append(bad, fmt.Sprintf("packet pool leak: %d gets vs %d puts", r.PoolGets, r.PoolPuts))
	}
	for _, b := range r.Backends {
		if b.ActiveChannels != 0 {
			bad = append(bad, fmt.Sprintf("%s: channel leak: %d channels still held", b.Host, b.ActiveChannels))
		}
		if b.ActiveTransactions != 0 {
			bad = append(bad, fmt.Sprintf("%s: transaction leak: %d alive after drain", b.Host, b.ActiveTransactions))
		}
		if b.ActiveSpans != 0 {
			bad = append(bad, fmt.Sprintf("%s: span leak: %d spans open across incarnations", b.Host, b.ActiveSpans))
		}
		j := b.Journal
		if j.Open != 0 {
			bad = append(bad, fmt.Sprintf("%s: journal has %d entries still open after recovery", b.Host, j.Open))
		}
		if j.DoubleEnds != 0 {
			bad = append(bad, fmt.Sprintf("%s: %d CDRs double-ended", b.Host, j.DoubleEnds))
		}
		if j.Begins != j.Ends {
			bad = append(bad, fmt.Sprintf("%s: journal imbalance: %d begins vs %d ends", b.Host, j.Begins, j.Ends))
		}
		if uint64(len(b.Recovered)) != j.Lost {
			bad = append(bad, fmt.Sprintf("%s: %d recovered records vs journal lost=%d", b.Host, len(b.Recovered), j.Lost))
		}
		lost := 0
		for _, c := range b.Committed {
			if c.Lost {
				lost++
			}
		}
		if uint64(lost) != j.Lost {
			bad = append(bad, fmt.Sprintf("%s: %d LOST CDRs committed vs journal lost=%d", b.Host, lost, j.Lost))
		}
	}
	l := r.Load
	if l.Attempts != l.Established+l.Blocked+l.Abandoned+l.Failed {
		bad = append(bad, fmt.Sprintf("call accounting: %d attempts != %d+%d+%d+%d",
			l.Attempts, l.Established, l.Blocked, l.Abandoned, l.Failed))
	}
	return bad
}

// TimelineSummary renders the failure/recovery timeline and the
// crash-accounting totals as one deterministic string — the golden
// pin for same-config-same-seed ⇒ bit-identical failover behaviour.
func (r *ClusterResult) TimelineSummary() string {
	s := ""
	for i, e := range r.Events {
		if i > 0 {
			s += ";"
		}
		s += e.String()
	}
	var lost, recovered int
	for _, b := range r.Backends {
		lost += int(b.Journal.Lost)
		recovered += len(b.Committed) - int(b.Journal.Lost)
	}
	return fmt.Sprintf("%s|redirects=%d failovers=%d unroutable=%d repins=%d|lost=%d recovered=%d|attempts=%d est=%d blocked=%d failed=%d",
		s, r.Balancer.Redirects, r.Balancer.Failovers, r.Balancer.UnroutableInvites, r.Balancer.Repins,
		lost, recovered, r.Load.Attempts, r.Load.Established, r.Load.Blocked, r.Load.Failed)
}

// CrashFailover is the acceptance scenario: three 8-channel backends
// behind a least-busy balancer carry A = 20 E (B(20,24) ≈ 7%); at
// t = 20 s — peak load — backend 0 is killed, and restarted at
// t = 38 s. Health probes (1 s cadence, 1 s timeout, 3 strikes) must
// mark it down within the probe threshold; placement shifts to the
// two survivors (16 channels, B(20,16) ≈ 17% — the blocking spike);
// after restart the backend re-enters through probe + slow-start.
// Blackholed INVITEs fail over via timeout retry; every call
// interrupted by the crash must surface as exactly one LOST CDR.
func CrashFailover(seed uint64) ClusterScenario {
	return ClusterScenario{
		Name:    "crash-failover",
		Desc:    "crash 1 of 3 backends at peak, health-probe markdown, failover, restart with slow-start",
		Seed:    seed,
		Servers: 3,
		PerServer: pbx.Config{
			MaxChannels: 8,
		},
		Policy: cluster.LeastBusy,
		Health: cluster.HealthConfig{
			ProbeInterval: time.Second,
			ProbeTimeout:  time.Second,
			FailThreshold: 3,
			SlowStart:     5 * time.Second,
		},
		Load: sipp.Config{
			Rate:          2,
			Window:        60 * time.Second,
			Hold:          10 * time.Second,
			Arrivals:      sipp.ArrivalPoisson,
			HoldDist:      sipp.HoldExponential,
			RetryMax:      2,
			RetryBase:     500 * time.Millisecond,
			RetryTimeouts: true,
		},
		Ops: []Op{
			{At: 20 * time.Second, Kind: CrashServer, Backend: 0},
			{At: 38 * time.Second, Kind: RestartServer, Backend: 0},
		},
	}
}

// CrashMedia exercises the crash path with packetized RTP through the
// relays: when backend 0 dies its relay ports go dark mid-call, the
// callee-side media watchdog detects the stalled stream and hangs up,
// and the restarted backend absorbs the stray BYEs.
func CrashMedia(seed uint64) ClusterScenario {
	return ClusterScenario{
		Name:    "crash-media",
		Desc:    "backend crash with live RTP relays; media watchdog reaps orphaned callee legs",
		Seed:    seed,
		Servers: 3,
		PerServer: pbx.Config{
			MaxChannels: 4,
		},
		Policy: cluster.LeastBusy,
		Health: cluster.HealthConfig{
			ProbeInterval: 500 * time.Millisecond,
			ProbeTimeout:  500 * time.Millisecond,
			FailThreshold: 2,
			SlowStart:     2 * time.Second,
		},
		Load: sipp.Config{
			Rate:          0.8,
			Window:        30 * time.Second,
			Hold:          6 * time.Second,
			Media:         sipp.MediaPacketized,
			MediaTimeout:  3 * time.Second,
			RetryMax:      1,
			RetryBase:     500 * time.Millisecond,
			RetryTimeouts: true,
		},
		Ops: []Op{
			{At: 12 * time.Second, Kind: CrashServer, Backend: 0},
			{At: 22 * time.Second, Kind: RestartServer, Backend: 0},
		},
	}
}

// DrainRolling drains one backend of three under steady load: new
// placements shift to its peers while its established calls complete,
// the drain-duration histogram records the window, and the probe
// plane marks the draining server down (its OPTIONS answer 503).
func DrainRolling(seed uint64) ClusterScenario {
	return ClusterScenario{
		Name:    "drain-rolling",
		Desc:    "administrative drain of one backend under load; calls finish, placement shifts",
		Seed:    seed,
		Servers: 3,
		PerServer: pbx.Config{
			MaxChannels: 8,
		},
		Policy: cluster.LeastBusy,
		Health: cluster.HealthConfig{
			ProbeInterval: time.Second,
			ProbeTimeout:  time.Second,
			FailThreshold: 2,
			SlowStart:     2 * time.Second,
		},
		Load: sipp.Config{
			Rate:     1.5,
			Window:   45 * time.Second,
			Hold:     8 * time.Second,
			HoldDist: sipp.HoldExponential,
			RetryMax: 1,
		},
		Ops: []Op{
			{At: 15 * time.Second, Kind: DrainServer, Backend: 0},
		},
	}
}
