// Package chaos is a deterministic fault-injection harness for the
// PBX: it composes netsim link impairments (loss, jitter, rate limits,
// duplication, reordering) and control-plane faults (network
// partitions) into named scenarios, drives full SIPp→PBX→SIPp call
// flows through them on the virtual clock, and checks the invariants
// that must survive any fault — no leaked channels, balanced CDRs,
// conserved call accounting.
//
// Everything runs on the discrete-event scheduler with seeded RNGs:
// a scenario is a pure function of its seed, so every run is
// bit-reproducible and every failure is replayable. This is the
// harness the overload-control layer (pbx.AdmissionPolicy +
// client-side Retry-After backoff) is proven with.
package chaos

import (
	"fmt"
	"time"

	"repro/internal/directory"
	"repro/internal/monitor"
	"repro/internal/netsim"
	"repro/internal/pbx"
	"repro/internal/sip"
	"repro/internal/sipp"
	"repro/internal/stats"
	"repro/internal/telemetry"
	"repro/internal/transport"
)

// Host names of the fixed three-node topology (Fig. 1 of the paper:
// client bank, PBX, server bank).
const (
	ClientHost = "sippc"
	PBXHost    = "pbx"
	ServerHost = "sipps"
)

// Partition blackholes the PBX signalling port for a window of virtual
// time: packets addressed to it fall on the floor (counted as
// no-route), exactly what a switch failure between the testbed hosts
// looks like. Media relay ports stay bound — it is a signalling-plane
// partition.
type Partition struct {
	Start    time.Duration
	Duration time.Duration
}

// Fault bundles the injected impairments of one scenario.
type Fault struct {
	// ClientLink impairs both directions between the caller bank and
	// the PBX; ServerLink likewise for PBX↔callee bank. A zero profile
	// leaves the default clean 1 ms link in place.
	ClientLink netsim.LinkProfile
	ServerLink netsim.LinkProfile
	// Partitions blackhole the PBX signalling port.
	Partitions []Partition
}

// Scenario is one named chaos experiment.
type Scenario struct {
	Name string
	Desc string
	// Seed makes the run reproducible; it feeds the network, PBX and
	// generator RNGs (with distinct salts).
	Seed uint64
	// Fault is what breaks.
	Fault Fault
	// PBX configures the server under test (admission policy, CPU
	// model, channel pool).
	PBX pbx.Config
	// Load is the offered traffic.
	Load sipp.Config
	// Shards, when > 1, runs the scenario on the partitioned engine
	// (generator bank and PBX on separate schedulers); results are
	// bit-identical to the single-scheduler run. Faulted links whose
	// jitter reaches their delay leave no guaranteed cross-shard
	// lookahead, so those scenarios collapse to a single host group.
	Shards int
}

// placementGroups returns the host groups a scenario may split across
// shards. Impaired links with no guaranteed minimum delay (jitter ≥
// delay) cannot cross a shard boundary, so such topologies keep every
// host in one group.
func (sc Scenario) placementGroups() [][]string {
	zero := netsim.LinkProfile{}
	if (sc.Fault.ClientLink != zero && sc.Fault.ClientLink.Lookahead() <= 0) ||
		(sc.Fault.ServerLink != zero && sc.Fault.ServerLink.Lookahead() <= 0) {
		return [][]string{{ClientHost, PBXHost, ServerHost}}
	}
	return [][]string{{ClientHost, ServerHost}, {PBXHost}}
}

// Result is everything a run observed.
type Result struct {
	Scenario string
	// Load is the generator's per-call view.
	Load sipp.Results
	// Counters/CDRs are the server's view.
	Counters pbx.Counters
	CDRs     []pbx.CDR
	// Signaling holds the server endpoint's wire counters
	// (retransmissions, timeouts, parse errors).
	Signaling sip.Stats
	// Timeline is the per-second wire activity; Capture the Table-I
	// style totals.
	Timeline *monitor.Timeline
	Capture  *monitor.Capture
	// Links maps "src->dst" to that direction's link counters.
	Links map[string]netsim.LinkStats
	// NoRoute counts packets that hit an unbound port (partitions).
	NoRoute uint64
	// PoolGets/PoolPuts are the packet pool's lifetime counters summed
	// over shards; a run that completes its drain with gets != puts has
	// leaked packet buffers across a shard boundary (ownership bug).
	PoolGets, PoolPuts uint64
	// Leak detectors, read after the post-run drain.
	ActiveChannels     int
	ActiveTransactions int
	// ActiveSpans counts call trace spans still open after the drain —
	// a span leak means some INVITE path never reached traceEnd.
	ActiveSpans int
	// CPU band (lo, mean, hi) over the busy plateau.
	CPULo, CPUMean, CPUHi float64
	// Degradation is the ladder's transition timeline (empty when the
	// scenario runs without Config.Degradation).
	Degradation []pbx.DegradationTransition
	// Telemetry is the end-of-run metrics snapshot; Series the
	// per-second sampler rows over the loaded interval.
	Telemetry telemetry.Snapshot
	Series    []monitor.Sample
}

// drainTail is how long the harness keeps the clock running after the
// last call ends: past the 32 s transaction timeout and the 5 s
// completed-transaction linger, so any leaked transaction is a real
// leak and not a timer still draining.
const drainTail = 40 * time.Second

// Run executes one scenario to completion and returns the observation.
func Run(sc Scenario) (*Result, error) {
	k := sc.Shards
	if k < 1 {
		k = 1
	}
	group := netsim.NewShardGroup(k)
	hostShard := netsim.AssignShards(sc.Seed, sc.placementGroups(), k)
	net := netsim.NewShardedNetwork(group, stats.NewRNG(sc.Seed^0xc4a05), hostShard)
	net.SetDefaultProfile(netsim.LinkProfile{Delay: time.Millisecond})
	if sc.Fault.ClientLink != (netsim.LinkProfile{}) {
		net.SetDuplexLink(ClientHost, PBXHost, sc.Fault.ClientLink)
	}
	if sc.Fault.ServerLink != (netsim.LinkProfile{}) {
		net.SetDuplexLink(PBXHost, ServerHost, sc.Fault.ServerLink)
	}

	// Wire observation: one capture/timeline per shard (each packet is
	// tapped exactly once, on its sender's shard), merged after the run.
	captures := make([]*monitor.Capture, k)
	timelines := make([]*monitor.Timeline, k)
	for s := 0; s < k; s++ {
		captures[s] = monitor.NewCapture()
		timelines[s] = monitor.NewTimeline()
		net.AddShardTap(s, captures[s].Tap())
		net.AddShardTap(s, timelines[s].Tap())
	}
	capture, timeline := captures[0], timelines[0]

	pbxSched := net.SchedulerFor(PBXHost)
	clock := transport.SimClock{Sched: pbxSched}

	// Observation plane, same shape as a core experiment: one shared
	// registry, scheduler pull-metrics, and a per-second sampler.
	reg := telemetry.NewRegistry()
	monitor.RegisterScheduler(reg, group)
	dir := directory.New()
	dir.AddUser(directory.User{Username: "uac", Password: "pw-uac"})
	target := sc.Load.Target
	if target == "" {
		target = "uas"
	}
	dir.AddUser(directory.User{Username: target, Password: "pw-" + target})

	pbxCfg := sc.PBX
	if pbxCfg.Seed == 0 {
		pbxCfg.Seed = sc.Seed ^ 0x9b
	}
	if sc.Load.Media == sipp.MediaPacketized {
		pbxCfg.RelayRTP = true
	}
	pbxCfg.Telemetry = reg
	factory := func(port int) (transport.Transport, error) {
		return transport.NewSim(net, fmt.Sprintf("%s:%d", PBXHost, port)), nil
	}
	pbxAddr := PBXHost + ":5060"
	pbxEP := sip.NewEndpoint(transport.NewSim(net, pbxAddr), clock)
	pbxEP.UseTelemetry(reg)
	server := pbx.New(pbxEP, dir, factory, pbxCfg)

	loadCfg := sc.Load
	if loadCfg.Seed == 0 {
		loadCfg.Seed = sc.Seed ^ 0x51
	}
	loadCfg.Telemetry = reg
	gen := sipp.New(net, ClientHost, ServerHost, pbxAddr, loadCfg)

	// Partitions: save the signalling binding, drop it for the window,
	// restore it afterwards. Times are absolute virtual time.
	sigAddr := netsim.Addr{Host: PBXHost, Port: 5060}
	for _, p := range sc.Fault.Partitions {
		p := p
		pbxSched.At(p.Start, func(time.Duration) {
			saved := net.Handler(sigAddr)
			if saved == nil {
				return
			}
			net.Unbind(sigAddr)
			pbxSched.At(p.Start+p.Duration, func(time.Duration) {
				net.Bind(sigAddr, saved)
			})
		})
	}

	sampler := monitor.NewSampler(reg, clock)
	sampler.Start()

	genSched := net.SchedulerFor(ClientHost)
	genShard := net.ShardOf(ClientHost)
	var out sipp.Results
	done := false
	gen.Start(func(r sipp.Results) {
		out = r
		done = true
		// The sampler lives on the PBX shard; stopping it from the
		// generator's completion event is staged as a barrier control,
		// stamped with the decision time (see Sampler.StopAt).
		doneAt := genSched.Now()
		group.Control(genShard, func() { sampler.StopAt(doneAt) })
	})
	for i := 0; i < 200 && !done; i++ {
		if err := group.Run(group.Now() + 10*time.Minute); err != nil {
			return nil, err
		}
	}
	if !done {
		return nil, fmt.Errorf("chaos: scenario %q did not finish", sc.Name)
	}
	// Let retransmission timers, lingering transactions and in-flight
	// packets drain so the leak checks below measure leaks, not timing.
	if err := group.Run(group.Now() + drainTail); err != nil {
		return nil, err
	}
	server.Close()
	for _, c := range captures[1:] {
		capture.Merge(c)
	}
	for _, tl := range timelines[1:] {
		timeline.Merge(tl)
	}

	lo, mean, hi := server.CPUBand()
	gets, puts := net.PoolStats()
	res := &Result{
		Scenario:           sc.Name,
		Load:               out,
		PoolGets:           gets,
		PoolPuts:           puts,
		Counters:           server.CountersSnapshot(),
		CDRs:               server.CDRs(),
		Signaling:          server.SignalingStats(),
		Timeline:           timeline,
		Capture:            capture,
		NoRoute:            net.NoRoute(),
		ActiveChannels:     server.ActiveChannels(),
		ActiveTransactions: server.ActiveTransactions(),
		ActiveSpans:        server.ActiveSpans(),
		CPULo:              lo,
		CPUMean:            mean,
		CPUHi:              hi,
		Degradation:        server.DegradationTimeline(),
		Telemetry:          reg.Snapshot(),
		Series:             sampler.Samples(),
		Links:              map[string]netsim.LinkStats{},
	}
	for _, pair := range [][2]string{
		{ClientHost, PBXHost}, {PBXHost, ClientHost},
		{PBXHost, ServerHost}, {ServerHost, PBXHost},
	} {
		res.Links[pair[0]+"->"+pair[1]] = net.LinkStats(pair[0], pair[1])
	}
	return res, nil
}

// Goodput counts the calls that actually delivered service: established
// and, when minMOS > 0, scored at or above that floor — the
// quality-weighted goodput of the overload-control literature (a call
// carried on a saturated host with unusable audio is not goodput).
func (r *Result) Goodput(minMOS float64) int {
	n := 0
	for _, rec := range r.Load.Records {
		if !rec.Established {
			continue
		}
		if minMOS > 0 && rec.MOS < minMOS {
			continue
		}
		n++
	}
	return n
}

// CheckInvariants returns the violated invariants (empty = healthy).
// These must hold for every scenario, however hostile:
//
//   - no channel leak: every admitted call released its channel;
//   - no transaction leak after the drain tail;
//   - no span leak: every traced INVITE reached a terminal outcome;
//   - CDRs balance the counters: completed CDRs == Completed,
//     established CDRs == Established;
//   - generator accounting conserves calls:
//     Attempts == Established + Blocked + Abandoned + Failed + Throttled;
//   - the packet pool balances: every packet taken from the pool went
//     back exactly once, whichever shard released it;
//   - no mid-call renegotiation: the degradation ladder only shapes
//     calls at admission, so the renegotiation sentinel must read zero.
func (r *Result) CheckInvariants() []string {
	var bad []string
	if r.PoolGets != r.PoolPuts {
		bad = append(bad, fmt.Sprintf("packet pool leak: %d gets vs %d puts", r.PoolGets, r.PoolPuts))
	}
	if r.ActiveChannels != 0 {
		bad = append(bad, fmt.Sprintf("channel leak: %d channels still held", r.ActiveChannels))
	}
	if r.ActiveTransactions != 0 {
		bad = append(bad, fmt.Sprintf("transaction leak: %d transactions alive after drain", r.ActiveTransactions))
	}
	if r.ActiveSpans != 0 {
		bad = append(bad, fmt.Sprintf("span leak: %d call trace spans still open after drain", r.ActiveSpans))
	}
	completed, established := 0, 0
	for _, c := range r.CDRs {
		if c.Completed {
			completed++
		}
		if c.Established {
			established++
		}
	}
	if uint64(completed) != r.Counters.Completed {
		bad = append(bad, fmt.Sprintf("CDR imbalance: %d completed CDRs vs Completed=%d",
			completed, r.Counters.Completed))
	}
	if uint64(established) != r.Counters.Established {
		bad = append(bad, fmt.Sprintf("CDR imbalance: %d established CDRs vs Established=%d",
			established, r.Counters.Established))
	}
	l := r.Load
	if l.Attempts != l.Established+l.Blocked+l.Abandoned+l.Failed+l.Throttled {
		bad = append(bad, fmt.Sprintf("call accounting: %d attempts != %d+%d+%d+%d+%d",
			l.Attempts, l.Established, l.Blocked, l.Abandoned, l.Failed, l.Throttled))
	}
	if r.Counters.Renegotiations != 0 {
		bad = append(bad, fmt.Sprintf("mid-call renegotiation: sentinel=%d (must be 0)",
			r.Counters.Renegotiations))
	}
	return bad
}
