package chaos

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/pbx"
	"repro/internal/sipp"
)

func mustRunRegistration(t *testing.T, sc RegistrationScenario) *RegistrationResult {
	t.Helper()
	res, err := RunRegistration(sc)
	if err != nil {
		t.Fatalf("RunRegistration(%s): %v", sc.Name, err)
	}
	if bad := res.CheckInvariants(); len(bad) != 0 {
		t.Fatalf("%s invariants violated:\n%s\n%s", sc.Name, bad, res.TimelineSummary())
	}
	return res
}

// TestRegisterStormScenario drives the steady-state storm: 2000
// endpoints register through the ramp and hold their bindings with
// jittered refreshes for a minute of virtual time. The refresh path
// must ride the nonce cache — after the initial challenge an endpoint
// never sees another 401.
func TestRegisterStormScenario(t *testing.T) {
	res := mustRunRegistration(t, RegisterStorm(1))
	l := res.Load
	if l.Refreshes == 0 {
		t.Fatal("storm produced no refreshes")
	}
	if l.Shed != 0 || l.Failed != 0 {
		t.Fatalf("uncapped storm shed %d / failed %d, want 0/0", l.Shed, l.Failed)
	}
	if l.StaleRetries != 0 {
		t.Fatalf("storm hit %d stale re-challenges, want 0 (nonce cache must hold)", l.StaleRetries)
	}
	if res.Nonces.Misses != 0 || res.Nonces.BadAuth != 0 {
		t.Fatalf("nonce cache: %+v, want no misses and no bad auth", res.Nonces)
	}
	if got := res.Counters[0].RegisterChallenges; got != uint64(l.Endpoints) {
		t.Errorf("challenges = %d, want exactly one per endpoint (%d)", got, l.Endpoints)
	}
}

// TestRegisterAvalancheScenario is the cold-restart acceptance run:
// the registrar dies fully loaded, restarts with an empty nonce cache,
// and the 10k-endpoint re-REGISTER wave must drain through the
// rate-capped admission lane — stale re-challenges for every cached
// credential, 503 + Retry-After spreading for the overflow, and no
// endpoint left behind (CheckInvariants in mustRunRegistration pins
// drain time and the 503 peak).
func TestRegisterAvalancheScenario(t *testing.T) {
	res := mustRunRegistration(t, RegisterAvalanche(1))
	l := res.Load
	if len(res.Counters) != 2 {
		t.Fatalf("got %d PBX incarnations, want 2 (crash + restart)", len(res.Counters))
	}
	if l.StaleRetries == 0 {
		t.Fatal("restart produced no stale re-challenges; the nonce cache did not reset")
	}
	if l.Shed == 0 {
		t.Fatal("the wave was never shed; the rate cap did not engage")
	}
	if l.DrainTime <= 0 {
		t.Fatal("drain time not recorded")
	}
	// The wave outruns the cap by design, so the drain must take
	// materially longer than the spread interval — the backlog is
	// worked off by Retry-After spreading, not absorbed instantly.
	if l.DrainTime <= 2*time.Second {
		t.Fatalf("drain %s suspiciously fast for a capped wave", l.DrainTime)
	}
	if res.Counters[1].RegisterStale == 0 {
		t.Error("restarted incarnation recorded no stale challenges")
	}
	if res.Counters[1].RegisterShed == 0 {
		t.Error("restarted incarnation recorded no shed REGISTERs")
	}
}

// TestGoldenAvalancheTimeline pins the avalanche run across the whole
// battery grid: for each seed the per-second timeline, the registrar
// counters and the telemetry snapshot must be byte-identical whatever
// the location store's shard count — shard placement is an internal
// layout choice and must never leak into observable behavior. Seed 1's
// artifacts are additionally pinned to testdata (regenerate with
// UPDATE_GOLDEN=1).
func TestGoldenAvalancheTimeline(t *testing.T) {
	for _, seed := range []uint64{1, 42, 160} {
		var base *RegistrationResult
		var baseJSON []byte
		for _, shards := range []int{1, 2, 4} {
			sc := RegisterAvalanche(seed)
			sc.DirShards = shards
			res := mustRunRegistration(t, sc)
			js, err := res.Telemetry.MarshalIndent()
			if err != nil {
				t.Fatalf("telemetry marshal: %v", err)
			}
			if base == nil {
				base, baseJSON = res, js
				continue
			}
			if got, want := res.TimelineSummary(), base.TimelineSummary(); got != want {
				t.Errorf("seed=%d: timeline differs between dirShards=1 and dirShards=%d:\n got:\n%s\n want:\n%s",
					seed, shards, got, want)
			}
			if fmt.Sprintf("%+v", res.Counters) != fmt.Sprintf("%+v", base.Counters) {
				t.Errorf("seed=%d dirShards=%d: registrar counters differ: %+v vs %+v",
					seed, shards, res.Counters, base.Counters)
			}
			if res.Nonces != base.Nonces {
				t.Errorf("seed=%d dirShards=%d: nonce stats differ: %+v vs %+v",
					seed, shards, res.Nonces, base.Nonces)
			}
			if !bytes.Equal(js, baseJSON) {
				t.Errorf("seed=%d dirShards=%d: telemetry snapshot differs from dirShards=1", seed, shards)
			}
		}
		if seed != 1 {
			continue
		}
		goldenCompare(t, filepath.Join("testdata", "register_avalanche_seed1.txt"),
			[]byte(base.TimelineSummary()))
		goldenCompare(t, filepath.Join("testdata", "register_avalanche_telemetry_seed1.json"),
			baseJSON)
	}
}

// TestMillionEndpointStorm is the north-star scale proof: one million
// provisioned endpoints register through a two-minute ramp and hold
// their bindings with jittered refreshes, all in virtual time on the
// sharded location store. Gated behind REGISTER_MILLION=1 — the run
// needs a few GB of heap and minutes of wall clock, which is too heavy
// for tier-1 (the measured run is recorded in EXPERIMENTS.md).
func TestMillionEndpointStorm(t *testing.T) {
	if os.Getenv("REGISTER_MILLION") == "" {
		t.Skip("set REGISTER_MILLION=1 to run the N=1M registration storm")
	}
	sc := RegistrationScenario{
		Name:      "million-storm",
		Desc:      "N=1M steady-state storm with jittered refreshes",
		Seed:      20150525,
		DirShards: 64,
		// A registrar sized for a 1M population must also size its
		// nonce cache for it: with the default 64k cap, every cached
		// nonce is FIFO-evicted long before its ~3.6-minute refresh
		// and the whole population eats a stale re-challenge per
		// cycle (still correct, but an extra round trip per refresh).
		PBX: pbx.Config{Registrar: pbx.RegistrarConfig{
			Enabled:     true,
			NonceCap:    2_000_000,
			NonceShards: 64,
		}},
		Load: sipp.RegisterConfig{
			Endpoints:       1_000_000,
			Expires:         240 * time.Second,
			Ramp:            120 * time.Second,
			Window:          240 * time.Second,
			RefreshFraction: 0.9,
		},
	}
	start := time.Now()
	res := mustRunRegistration(t, sc)
	l := res.Load
	if l.Refreshes == 0 {
		t.Fatal("million-endpoint storm produced no refreshes")
	}
	if l.Shed != 0 || l.Failed != 0 || l.StaleRetries != 0 {
		t.Fatalf("storm not clean: shed=%d failed=%d stale=%d", l.Shed, l.Failed, l.StaleRetries)
	}
	t.Logf("N=1M storm: %d registers (%d refreshes), peak %d ok/s, %d live bindings, wall %v",
		l.Registers, l.Refreshes, l.PeakOKPerSec, res.LiveBindings, time.Since(start).Round(time.Second))
}

// goldenCompare pins got against the golden file, honoring the repo's
// UPDATE_GOLDEN regeneration convention.
func goldenCompare(t *testing.T, golden string, got []byte) {
	t.Helper()
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden (run with UPDATE_GOLDEN=1 to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("output drifted from %s:\n got:\n%s\n want:\n%s", golden, got, want)
	}
}
