package chaos

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/directory"
	"repro/internal/netsim"
	"repro/internal/pbx"
	"repro/internal/sip"
	"repro/internal/sipp"
	"repro/internal/stats"
	"repro/internal/telemetry"
	"repro/internal/transport"
)

// RegistrarCrash schedules the cold-restart fault of a registration
// scenario: the PBX process dies at At, a fresh incarnation re-binds
// the same address at RestartAt (sim bind-replaces semantics, the same
// mechanism cluster failover uses), and the endpoint population
// launches its re-REGISTER wave at AvalancheAt spread over Spread.
type RegistrarCrash struct {
	At          time.Duration
	RestartAt   time.Duration
	AvalancheAt time.Duration
	Spread      time.Duration
}

// RegistrationScenario is one named registration chaos experiment:
// a provisioned endpoint population storms the registrar, optionally
// through a cold restart and the resulting re-REGISTER avalanche.
type RegistrationScenario struct {
	Name string
	Desc string
	// Seed feeds the network, PBX and generator RNGs (distinct salts).
	Seed uint64
	// DirShards sizes the sharded location store. Every externally
	// visible artifact must be invariant under this knob — that is the
	// shard-placement invariance the golden battery pins.
	DirShards int
	// PBX configures the server under test; the harness forces
	// Registrar.Enabled.
	PBX pbx.Config
	// Load is the registration workload.
	Load sipp.RegisterConfig
	// Crash, when non-nil, injects the cold restart + avalanche. The
	// avalanche must land inside the generator window or its wave
	// cannot be observed.
	Crash *RegistrarCrash
	// MaxDrain is the invariant ceiling on avalanche drain time;
	// MaxPeak503 on the per-second 503 peak at the client (0 = unchecked).
	MaxDrain   time.Duration
	MaxPeak503 int
	// Shards > 1 runs on the partitioned engine (client bank and PBX on
	// separate schedulers), bit-identical to the single-scheduler run.
	Shards int
}

// RegistrationResult is everything a registration run observed.
type RegistrationResult struct {
	Scenario string
	// Load is the generator's view of the storm.
	Load sipp.RegisterResults
	// Counters holds one snapshot per PBX incarnation, oldest first —
	// a crashed incarnation's counters freeze at the crash.
	Counters []pbx.Counters
	// Nonces is the live incarnation's nonce-cache counters.
	Nonces directory.NonceStats
	// Registered / LiveBindings are the store's view at the end of the
	// drained run.
	Registered   int
	LiveBindings int64
	DirShards    int
	// Leak detectors and conservation counters, read after the drain.
	ActiveTransactions int
	PoolGets, PoolPuts uint64
	NoRoute            uint64
	// Telemetry is the end-of-run metrics snapshot.
	Telemetry telemetry.Snapshot

	maxDrain   time.Duration
	maxPeak503 int
	crashed    bool
}

// RunRegistration executes one registration scenario to completion.
// The topology is two hosts — the endpoint bank and the registrar —
// on the default clean 1 ms link.
func RunRegistration(sc RegistrationScenario) (*RegistrationResult, error) {
	k := sc.Shards
	if k < 1 {
		k = 1
	}
	group := netsim.NewShardGroup(k)
	hostShard := netsim.AssignShards(sc.Seed, [][]string{{ClientHost}, {PBXHost}}, k)
	net := netsim.NewShardedNetwork(group, stats.NewRNG(sc.Seed^0xc4a05), hostShard)
	net.SetDefaultProfile(netsim.LinkProfile{Delay: time.Millisecond})

	pbxSched := net.SchedulerFor(PBXHost)
	clock := transport.SimClock{Sched: pbxSched}

	// Observation plane: the PBX + SIP families only. Scheduler pull
	// metrics are deliberately absent — their event counts vary with
	// DirShards (one expiry timer per shard), and the whole point of
	// the battery is that nothing externally visible does.
	reg := telemetry.NewRegistry()

	dirShards := sc.DirShards
	if dirShards < 1 {
		dirShards = 1
	}
	// Provision under the same account-name default the generator
	// applies, so a scenario that leaves Prefix empty still lines up.
	if sc.Load.Prefix == "" {
		sc.Load.Prefix = "u"
	}
	dir := directory.NewSharded(dirShards)
	dir.Provision(sc.Load.Prefix, 0, sc.Load.Endpoints)

	pbxCfg := sc.PBX
	pbxCfg.Registrar.Enabled = true
	if pbxCfg.Seed == 0 {
		pbxCfg.Seed = sc.Seed ^ 0x9b
	}
	pbxCfg.Telemetry = reg
	factory := func(port int) (transport.Transport, error) {
		return transport.NewSim(net, fmt.Sprintf("%s:%d", PBXHost, port)), nil
	}
	pbxAddr := PBXHost + ":5060"
	newServer := func(cfg pbx.Config) *pbx.Server {
		ep := sip.NewEndpoint(transport.NewSim(net, pbxAddr), clock)
		ep.UseTelemetry(reg)
		return pbx.New(ep, dir, factory, cfg)
	}
	server := newServer(pbxCfg)
	incarnations := []*pbx.Server{server}

	loadCfg := sc.Load
	if loadCfg.Seed == 0 {
		loadCfg.Seed = sc.Seed ^ 0x51
	}
	gen := sipp.NewRegister(net, ClientHost, pbxAddr, loadCfg)

	if c := sc.Crash; c != nil {
		pbxSched.At(c.At, func(time.Duration) {
			incarnations[0].Crash()
		})
		pbxSched.At(c.RestartAt, func(time.Duration) {
			// A fresh process: empty nonce cache, re-bound socket, its
			// own RNG stream. The location store survives (it models
			// the AOR database, not process memory), matching the
			// cluster journal's durability line.
			cfg2 := pbxCfg
			cfg2.Seed = pbxCfg.Seed ^ 0x2
			srv := newServer(cfg2)
			incarnations = append(incarnations, srv)
		})
		genSched := net.SchedulerFor(ClientHost)
		genSched.At(c.AvalancheAt, func(time.Duration) {
			gen.Avalanche(c.Spread)
		})
	}

	var out sipp.RegisterResults
	done := false
	gen.Start(func(r sipp.RegisterResults) {
		out = r
		done = true
	})
	// One-second chunks, so the clock stops near the generator's
	// completion instant and the store can be observed while the
	// population's bindings are still live (a 10-minute chunk would
	// overshoot into TTL expiry before the post-run reads).
	for i := 0; i < 7200 && !done; i++ {
		if err := group.Run(group.Now() + time.Second); err != nil {
			return nil, err
		}
	}
	if !done {
		return nil, fmt.Errorf("chaos: registration scenario %q did not finish", sc.Name)
	}
	// Read the store at the end of the loaded interval, while the
	// population's bindings are still in their refresh windows — the
	// drain tail below deliberately lets TTLs run out.
	registered := dir.Registered(group.Now())
	liveBindings := dir.LiveBindings()
	if err := group.Run(group.Now() + drainTail); err != nil {
		return nil, err
	}
	live := incarnations[len(incarnations)-1]
	live.Close()

	gets, puts := net.PoolStats()
	res := &RegistrationResult{
		Scenario:           sc.Name,
		Load:               out,
		Nonces:             live.NonceStats(),
		Registered:         registered,
		LiveBindings:       liveBindings,
		DirShards:          dirShards,
		ActiveTransactions: live.ActiveTransactions(),
		PoolGets:           gets,
		PoolPuts:           puts,
		NoRoute:            net.NoRoute(),
		Telemetry:          reg.Snapshot(),
		maxDrain:           sc.MaxDrain,
		maxPeak503:         sc.MaxPeak503,
		crashed:            sc.Crash != nil,
	}
	for _, srv := range incarnations {
		res.Counters = append(res.Counters, srv.CountersSnapshot())
	}
	return res, nil
}

// TimelineSummary renders the run as a compact, golden-friendly text
// block: the aggregate line, the avalanche line, and the per-second
// OK/503 series as seen by the endpoint bank.
func (r *RegistrationResult) TimelineSummary() string {
	var b strings.Builder
	l := r.Load
	fmt.Fprintf(&b, "endpoints=%d registers=%d initial=%d refreshes=%d reregisters=%d stale=%d shed=%d retries=%d failed=%d\n",
		l.Endpoints, l.Registers, l.Initial, l.Refreshes, l.Reregisters, l.StaleRetries, l.Shed, l.Retries, l.Failed)
	fmt.Fprintf(&b, "bindings=%d registered=%d peak_ok/s=%d peak_503/s=%d\n",
		r.LiveBindings, r.Registered, l.PeakOKPerSec, l.PeakShedPerSec)
	if r.crashed {
		fmt.Fprintf(&b, "avalanche at=%s drain=%s\n", l.AvalancheAt, l.DrainTime)
	}
	b.WriteString("sec      ok    503\n")
	for _, s := range l.Samples {
		fmt.Fprintf(&b, "%3d  %6d %6d\n", s.Sec, s.OK, s.Shed)
	}
	return b.String()
}

// CheckInvariants returns the violated registration invariants
// (empty = healthy):
//
//   - every endpoint completed its initial registration and none
//     exhausted its retries — shedding delays, it must not strand;
//   - the store agrees: one live binding per endpoint at the end;
//   - REGISTER accounting conserves: successes = initial + refreshes
//     + re-registrations;
//   - after a cold restart the avalanche drains completely, within
//     MaxDrain, and the 503 peak stays under MaxPeak503 (Retry-After
//     spreading must prevent a synchronized retry storm);
//   - no transaction leak after the drain tail, and the packet pool
//     balances.
func (r *RegistrationResult) CheckInvariants() []string {
	var bad []string
	l := r.Load
	// A crash may wipe in-flight initial registrations; those endpoints
	// are swept up by the avalanche wave instead, so the full-coverage
	// demand moves to Reregisters below.
	if !r.crashed && l.Initial != l.Endpoints {
		bad = append(bad, fmt.Sprintf("initial registrations: %d of %d endpoints", l.Initial, l.Endpoints))
	}
	if l.Failed != 0 {
		bad = append(bad, fmt.Sprintf("%d endpoints exhausted their retries", l.Failed))
	}
	if l.Registers != l.Initial+l.Refreshes+l.Reregisters {
		bad = append(bad, fmt.Sprintf("REGISTER accounting: %d != %d+%d+%d",
			l.Registers, l.Initial, l.Refreshes, l.Reregisters))
	}
	if r.Registered != l.Endpoints {
		bad = append(bad, fmt.Sprintf("store: %d registered users, want %d", r.Registered, l.Endpoints))
	}
	if r.LiveBindings != int64(l.Endpoints) {
		bad = append(bad, fmt.Sprintf("store: %d live bindings, want %d", r.LiveBindings, l.Endpoints))
	}
	if r.crashed {
		if l.Reregisters != l.Endpoints {
			bad = append(bad, fmt.Sprintf("avalanche: %d of %d endpoints re-registered", l.Reregisters, l.Endpoints))
		}
		if l.DrainTime <= 0 {
			bad = append(bad, "avalanche: drain time not recorded")
		} else if r.maxDrain > 0 && l.DrainTime > r.maxDrain {
			bad = append(bad, fmt.Sprintf("avalanche: drain took %s, ceiling %s", l.DrainTime, r.maxDrain))
		}
		if r.maxPeak503 > 0 && l.PeakShedPerSec > r.maxPeak503 {
			bad = append(bad, fmt.Sprintf("avalanche: 503 peak %d/s, ceiling %d/s", l.PeakShedPerSec, r.maxPeak503))
		}
	}
	if r.ActiveTransactions != 0 {
		bad = append(bad, fmt.Sprintf("transaction leak: %d alive after drain", r.ActiveTransactions))
	}
	if r.PoolGets != r.PoolPuts {
		bad = append(bad, fmt.Sprintf("packet pool leak: %d gets vs %d puts", r.PoolGets, r.PoolPuts))
	}
	return bad
}

// RegisterStorm is the steady-state registration scenario: a
// population registering through the ramp and holding its bindings
// with jittered refreshes for the whole window.
func RegisterStorm(seed uint64) RegistrationScenario {
	return RegistrationScenario{
		Name:      "register-storm",
		Desc:      "steady-state registration load with jittered refreshes",
		Seed:      seed,
		DirShards: 4,
		Load: sipp.RegisterConfig{
			Endpoints: 2000,
			Prefix:    "u",
			Expires:   30 * time.Second,
			Ramp:      5 * time.Second,
			Window:    55 * time.Second,
		},
	}
}

// RegisterAvalanche is the cold-restart scenario: the registrar dies
// under a fully registered population, restarts with an empty nonce
// cache, and the whole population re-registers in a wave that the
// admission lane's rate cap + Retry-After spreading must drain
// without livelock.
func RegisterAvalanche(seed uint64) RegistrationScenario {
	return RegistrationScenario{
		Name:      "register-avalanche",
		Desc:      "cold-restart re-REGISTER avalanche through the rate-capped admission lane",
		Seed:      seed,
		DirShards: 4,
		PBX: pbx.Config{
			Registrar: pbx.RegistrarConfig{
				Enabled:            true,
				MaxRegistersPerSec: 2500,
			},
		},
		Load: sipp.RegisterConfig{
			Endpoints:      10000,
			Prefix:         "u",
			Expires:        10 * time.Minute,
			Ramp:           8 * time.Second,
			Window:         52 * time.Second,
			DisableRefresh: true,
		},
		Crash: &RegistrarCrash{
			At:          15 * time.Second,
			RestartAt:   18 * time.Second,
			AvalancheAt: 20 * time.Second,
			Spread:      4 * time.Second,
		},
		MaxDrain:   30 * time.Second,
		MaxPeak503: 6000,
	}
}
