package mos

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestCleanG711Score(t *testing.T) {
	// G.711 on a clean LAN path: R ≈ 93.2 − Id(20ms) → MOS ≈ 4.4.
	// This is the ceiling the paper's Table I MOS column sits near.
	m := Score(G711, Metrics{OneWayDelay: 20 * time.Millisecond})
	if m < 4.35 || m > 4.45 {
		t.Errorf("clean G.711 MOS = %.3f, want ~4.4", m)
	}
}

func TestFromRAnchors(t *testing.T) {
	if got := FromR(0); got != 1 {
		t.Errorf("FromR(0) = %v", got)
	}
	if got := FromR(-5); got != 1 {
		t.Errorf("FromR(-5) = %v", got)
	}
	if got := FromR(100); got != 4.5 {
		t.Errorf("FromR(100) = %v", got)
	}
	if got := FromR(200); got != 4.5 {
		t.Errorf("FromR(200) = %v", got)
	}
	// Textbook anchor: R = 93.2 -> MOS ≈ 4.41.
	if got := FromR(93.2); math.Abs(got-4.41) > 0.01 {
		t.Errorf("FromR(93.2) = %v, want ~4.41", got)
	}
	// R = 50 -> MOS ≈ 2.58 (standard table value 2.6).
	if got := FromR(50); math.Abs(got-2.6) > 0.05 {
		t.Errorf("FromR(50) = %v, want ~2.6", got)
	}
}

func TestFromRMonotone(t *testing.T) {
	f := func(raw uint16) bool {
		r := float64(raw%1000) / 10 // [0, 100)
		return FromR(r+0.1) >= FromR(r)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestScoreDecreasesWithLoss(t *testing.T) {
	f := func(raw uint8) bool {
		// Keep loss below the point where R clamps to 0 and the MOS
		// floor makes the comparison non-strict.
		loss := float64(raw%100) / 512 // [0, ~0.2)
		base := Metrics{OneWayDelay: 20 * time.Millisecond, LossRatio: loss}
		more := base
		more.LossRatio += 0.01
		return Score(G711, more) < Score(G711, base)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestScoreDecreasesWithDelay(t *testing.T) {
	f := func(raw uint16) bool {
		d := time.Duration(raw%400) * time.Millisecond
		a := Score(G711, Metrics{OneWayDelay: d})
		b := Score(G711, Metrics{OneWayDelay: d + 10*time.Millisecond})
		return b <= a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDelayKneeAt177ms(t *testing.T) {
	// The Id slope steepens past 177.3 ms.
	slopeBefore := RFactor(G711, Metrics{OneWayDelay: 100 * time.Millisecond}) -
		RFactor(G711, Metrics{OneWayDelay: 110 * time.Millisecond})
	slopeAfter := RFactor(G711, Metrics{OneWayDelay: 250 * time.Millisecond}) -
		RFactor(G711, Metrics{OneWayDelay: 260 * time.Millisecond})
	if slopeAfter <= slopeBefore*2 {
		t.Errorf("delay impairment knee missing: before=%.3f after=%.3f", slopeBefore, slopeAfter)
	}
}

func TestPLCIsMoreRobust(t *testing.T) {
	m := Metrics{OneWayDelay: 20 * time.Millisecond, LossRatio: 0.03}
	if Score(G711PLC, m) <= Score(G711, m) {
		t.Error("PLC variant should score higher under loss")
	}
	// At zero loss they match.
	clean := Metrics{OneWayDelay: 20 * time.Millisecond}
	if Score(G711PLC, clean) != Score(G711, clean) {
		t.Error("PLC variant should match at zero loss")
	}
}

func TestG729BelowG711(t *testing.T) {
	clean := Metrics{OneWayDelay: 20 * time.Millisecond}
	if Score(G729, clean) >= Score(G711, clean) {
		t.Error("G.729 should score below G.711 on a clean path")
	}
	// G.729 clean MOS ≈ 4.0-4.1.
	if m := Score(G729, clean); m < 3.9 || m > 4.2 {
		t.Errorf("clean G.729 MOS = %.3f, want ~4.05", m)
	}
}

func TestBurstinessHurts(t *testing.T) {
	base := Metrics{OneWayDelay: 20 * time.Millisecond, LossRatio: 0.02, BurstRatio: 1}
	bursty := base
	bursty.BurstRatio = 4
	if Score(G711, bursty) >= Score(G711, base) {
		t.Error("bursty loss should score worse than random loss")
	}
	// BurstRatio 0 behaves as 1.
	zero := base
	zero.BurstRatio = 0
	if Score(G711, zero) != Score(G711, base) {
		t.Error("BurstRatio 0 should default to random loss")
	}
}

func TestScoreBounds(t *testing.T) {
	f := func(dRaw uint16, lRaw uint8, bRaw uint8) bool {
		m := Metrics{
			OneWayDelay: time.Duration(dRaw) * time.Millisecond,
			LossRatio:   float64(lRaw) / 255,
			BurstRatio:  float64(bRaw) / 16,
		}
		for _, c := range []Codec{G711, G711PLC, G729} {
			s := Score(c, m)
			if s < 1 || s > 4.5 || math.IsNaN(s) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}

func TestGrade(t *testing.T) {
	cases := []struct {
		mos  float64
		want string
	}{
		{4.45, "best"}, {4.2, "high"}, {3.8, "medium"}, {3.3, "low"}, {2.0, "poor"},
	}
	for _, c := range cases {
		if got := Grade(c.mos); got != c.want {
			t.Errorf("Grade(%v) = %q, want %q", c.mos, got, c.want)
		}
	}
}

func TestMaxForCodec(t *testing.T) {
	if m := MaxForCodec(G711); m < 4.35 {
		t.Errorf("G.711 ceiling = %v", m)
	}
}

func TestLossForTarget(t *testing.T) {
	// Find the loss that drags G.711 to MOS 4.0, then verify.
	loss := LossForTarget(G711, 20*time.Millisecond, 4.0)
	if loss <= 0 || loss > 0.10 {
		t.Fatalf("loss for MOS 4.0 = %v, want small positive", loss)
	}
	got := Score(G711, Metrics{OneWayDelay: 20 * time.Millisecond, LossRatio: loss})
	if math.Abs(got-4.0) > 0.01 {
		t.Errorf("score at solved loss = %v, want 4.0", got)
	}
	// Unreachable target.
	if l := LossForTarget(G711, 400*time.Millisecond, 4.4); l != 0 {
		t.Errorf("unreachable target returned %v, want 0", l)
	}
}

func TestTableIShapeMOSAboveFour(t *testing.T) {
	// The paper's Table I keeps MOS > 4 even at A=240 where packet
	// errors appear. Our model must allow that: at 1% loss with PLC and
	// LAN delay the MOS stays above 4.
	m := Score(G711PLC, Metrics{OneWayDelay: 25 * time.Millisecond, LossRatio: 0.01})
	if m <= 4.0 {
		t.Errorf("MOS at 1%% loss with PLC = %.3f, want > 4", m)
	}
}

func BenchmarkScore(b *testing.B) {
	m := Metrics{OneWayDelay: 35 * time.Millisecond, LossRatio: 0.012, BurstRatio: 1.3}
	for i := 0; i < b.N; i++ {
		_ = Score(G711, m)
	}
}
