// Package mos implements the ITU-T G.107 E-model, the objective
// voice-quality estimator behind tools like VoIPmonitor, which the
// paper uses to score every completed call ("Assessing the quality of
// the call is made by measuring voice quality according to the Mean
// Opinion Score (MOS) test", Sec. III-C).
//
// The model computes a transmission rating factor R from the mouth-to-
// ear delay, the codec's equipment impairment and the observed packet
// loss, then maps R to the 1–5 MOS scale of ITU-T P.800. With G.711,
// no impairments and negligible delay it yields R = 93.2 → MOS ≈ 4.41,
// the "good to great" band Table I reports.
package mos

import "time"

// Codec describes the E-model parameters of a speech codec: the base
// equipment impairment Ie and the packet-loss robustness factor Bpl
// from ITU-T G.113 Appendix I.
type Codec struct {
	Name string
	// Ie is the equipment impairment factor at zero loss.
	Ie float64
	// Bpl is the packet-loss robustness factor; larger is more robust.
	Bpl float64
	// FrameMs is the packetization interval in milliseconds,
	// contributing to the one-way delay budget.
	FrameMs int
	// PayloadBytes is the codec payload per packet at FrameMs.
	PayloadBytes int
}

// Standard codecs. G711 matches the paper's testbed; the PLC variant
// models a receiver that conceals isolated losses.
var (
	// G711 is G.711 µ-law/A-law without packet-loss concealment.
	G711 = Codec{Name: "G.711", Ie: 0, Bpl: 4.3, FrameMs: 20, PayloadBytes: 160}
	// G711PLC is G.711 with packet loss concealment (G.711 Appendix I).
	G711PLC = Codec{Name: "G.711+PLC", Ie: 0, Bpl: 25.1, FrameMs: 20, PayloadBytes: 160}
	// G726 (ADPCM at 32 kbit/s) and G729 are lower-rate comparison
	// points for the codec-choice study.
	G726 = Codec{Name: "G.726-32", Ie: 7, Bpl: 19, FrameMs: 20, PayloadBytes: 80}
	G729 = Codec{Name: "G.729A", Ie: 11, Bpl: 19, FrameMs: 20, PayloadBytes: 20}
	// GSMFR, ILBC and G722 complete the negotiable set of the
	// multi-codec call path (internal/codec carries their RTP identity;
	// these are the matching G.113 quality profiles).
	GSMFR = Codec{Name: "GSM-FR", Ie: 20, Bpl: 10, FrameMs: 20, PayloadBytes: 33}
	ILBC  = Codec{Name: "iLBC", Ie: 11, Bpl: 32, FrameMs: 20, PayloadBytes: 38}
	G722  = Codec{Name: "G.722", Ie: 13, Bpl: 14, FrameMs: 20, PayloadBytes: 160}
)

// Codecs lists the built-in presets in bit-rate order.
func Codecs() []Codec { return []Codec{G711, G711PLC, G722, G726, ILBC, GSMFR, G729} }

// BitsPerSecond returns the codec's raw payload bit rate.
func (c Codec) BitsPerSecond() float64 {
	if c.FrameMs == 0 {
		return 0
	}
	return float64(c.PayloadBytes) * 8 * 1000 / float64(c.FrameMs)
}

// WireBitsPerSecond returns the on-the-wire rate of one direction
// including the 40-byte IP/UDP/RTP header stack at the codec's
// packetization.
func (c Codec) WireBitsPerSecond() float64 {
	if c.FrameMs == 0 {
		return 0
	}
	return float64(c.PayloadBytes+40) * 8 * 1000 / float64(c.FrameMs)
}

// Metrics are the network observations the model consumes, as produced
// by rtp.Receiver or the flow-level media model.
type Metrics struct {
	// OneWayDelay is the mouth-to-ear delay: network one-way delay
	// plus packetization and jitter-buffer delay.
	OneWayDelay time.Duration
	// LossRatio is the end-to-end packet loss probability in [0,1],
	// including packets discarded by the jitter buffer.
	LossRatio float64
	// BurstRatio characterizes loss burstiness per G.107: 1 for random
	// (independent) loss, >1 for bursty loss. Zero is treated as 1.
	BurstRatio float64
}

// DefaultR0 is the basic signal-to-noise ratio term of the E-model
// with all default G.107 parameter values.
const DefaultR0 = 93.2

// RFactor computes the transmission rating R = R0 − Id − Ie,eff (+A with
// A=0, the default advantage factor) for the codec and observations.
func RFactor(c Codec, m Metrics) float64 {
	r := DefaultR0 - delayImpairment(m.OneWayDelay) - effectiveEquipmentImpairment(c, m)
	if r < 0 {
		r = 0
	}
	if r > 100 {
		r = 100
	}
	return r
}

// delayImpairment implements the simplified Id formula of G.107
// (ITU-T G.107 Eq. 7-27 simplification used industry-wide):
// Id = 0.024·d + 0.11·(d − 177.3)·H(d − 177.3), d in milliseconds.
func delayImpairment(d time.Duration) float64 {
	ms := float64(d) / float64(time.Millisecond)
	id := 0.024 * ms
	if ms > 177.3 {
		id += 0.11 * (ms - 177.3)
	}
	return id
}

// effectiveEquipmentImpairment implements G.107 Eq. 7-29:
// Ie,eff = Ie + (95 − Ie) · Ppl / (Ppl/BurstR + Bpl).
func effectiveEquipmentImpairment(c Codec, m Metrics) float64 {
	ppl := m.LossRatio * 100
	if ppl <= 0 {
		return c.Ie
	}
	burst := m.BurstRatio
	if burst < 1 {
		burst = 1
	}
	return c.Ie + (95-c.Ie)*ppl/(ppl/burst+c.Bpl)
}

// FromR maps an R factor to MOS per ITU-T G.107 Annex B:
// MOS = 1 for R ≤ 0, 4.5 for R ≥ 100, else
// 1 + 0.035·R + R·(R−60)·(100−R)·7·10⁻⁶.
func FromR(r float64) float64 {
	switch {
	case r <= 0:
		return 1
	case r >= 100:
		return 4.5
	default:
		m := 1 + 0.035*r + r*(r-60)*(100-r)*7e-6
		// The cubic dips below 1 for R < 6.52; clamp to the scale
		// floor, which also keeps the mapping monotone.
		if m < 1 {
			m = 1
		}
		return m
	}
}

// Score computes the MOS estimate for the codec and observations.
func Score(c Codec, m Metrics) float64 { return FromR(RFactor(c, m)) }

// Tandem returns the E-model profile of a transcoded path that passes
// through codec a on one leg and codec b on the other. Per ITU-T
// G.113 §8, equipment impairments of cascaded codecs add; loss
// robustness degrades to the more fragile leg (the first decoder to
// lose a frame breaks the chain); and the packetization interval is the
// slower leg's. The resulting profile is never better than either leg
// alone — transcoding only costs quality.
func Tandem(a, b Codec) Codec {
	ie := a.Ie + b.Ie
	if ie > 95 {
		ie = 95
	}
	bpl := a.Bpl
	if b.Bpl < bpl {
		bpl = b.Bpl
	}
	frame := a.FrameMs
	if b.FrameMs > frame {
		frame = b.FrameMs
	}
	payload := a.PayloadBytes
	if b.PayloadBytes < payload {
		payload = b.PayloadBytes
	}
	return Codec{
		Name:         a.Name + ">" + b.Name,
		Ie:           ie,
		Bpl:          bpl,
		FrameMs:      frame,
		PayloadBytes: payload,
	}
}

// Grade buckets a MOS into the conventional user-satisfaction labels
// (ITU-T G.107 Annex B, Table B.1).
func Grade(mos float64) string {
	switch {
	case mos >= 4.34:
		return "best"
	case mos >= 4.03:
		return "high"
	case mos >= 3.60:
		return "medium"
	case mos >= 3.10:
		return "low"
	default:
		return "poor"
	}
}

// MaxForCodec returns the MOS ceiling of a codec on an unimpaired path
// (zero network delay beyond one packetization interval, zero loss).
func MaxForCodec(c Codec) float64 {
	return Score(c, Metrics{OneWayDelay: time.Duration(c.FrameMs) * time.Millisecond})
}

// LossForTarget inverts the model: it returns the loss ratio at which
// the codec's MOS (at the given delay) drops to target, found by
// bisection; returns 1 if even total loss stays above target (cannot
// happen for real targets) and 0 if the target is unreachable.
func LossForTarget(c Codec, delay time.Duration, target float64) float64 {
	if Score(c, Metrics{OneWayDelay: delay}) <= target {
		return 0
	}
	lo, hi := 0.0, 1.0
	for i := 0; i < 100; i++ {
		mid := (lo + hi) / 2
		if Score(c, Metrics{OneWayDelay: delay, LossRatio: mid}) > target {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}
