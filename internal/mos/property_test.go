package mos

import (
	"testing"
	"time"

	"repro/internal/stats"
)

// The E-model feeds admission control and capacity tables, so its
// qualitative shape is load-bearing: quality must never improve when
// the network gets worse, and a transcoded (tandem) path must never
// score above the worse of its two legs. These properties hold for
// every registered codec across a randomized sweep of operating points.

func testCodecs() []Codec { return Codecs() }

// TestMOSMonotoneInLoss: for each codec, at any fixed delay, MOS is
// non-increasing in the loss ratio.
func TestMOSMonotoneInLoss(t *testing.T) {
	rng := stats.NewRNG(0x10557)
	for _, c := range testCodecs() {
		for trial := 0; trial < 200; trial++ {
			delay := time.Duration(rng.Float64()*400) * time.Millisecond
			l1 := rng.Float64()
			l2 := rng.Float64()
			if l1 > l2 {
				l1, l2 = l2, l1
			}
			burst := 1 + rng.Float64()*3
			m1 := Score(c, Metrics{OneWayDelay: delay, LossRatio: l1, BurstRatio: burst})
			m2 := Score(c, Metrics{OneWayDelay: delay, LossRatio: l2, BurstRatio: burst})
			if m2 > m1+1e-12 {
				t.Fatalf("%s: MOS rose with loss: loss %.4f->%.4f MOS %.6f->%.6f (delay %v)",
					c.Name, l1, l2, m1, m2, delay)
			}
		}
	}
}

// TestMOSMonotoneInDelay: for each codec, at any fixed loss, MOS is
// non-increasing in one-way delay.
func TestMOSMonotoneInDelay(t *testing.T) {
	rng := stats.NewRNG(0xde1a4)
	for _, c := range testCodecs() {
		for trial := 0; trial < 200; trial++ {
			loss := rng.Float64() * 0.5
			d1 := time.Duration(rng.Float64()*800) * time.Millisecond
			d2 := time.Duration(rng.Float64()*800) * time.Millisecond
			if d1 > d2 {
				d1, d2 = d2, d1
			}
			m1 := Score(c, Metrics{OneWayDelay: d1, LossRatio: loss, BurstRatio: 1})
			m2 := Score(c, Metrics{OneWayDelay: d2, LossRatio: loss, BurstRatio: 1})
			if m2 > m1+1e-12 {
				t.Fatalf("%s: MOS rose with delay: %v->%v MOS %.6f->%.6f (loss %.4f)",
					c.Name, d1, d2, m1, m2, loss)
			}
		}
	}
}

// TestTandemNeverBeatsWorseLeg: a transcoded bridge scored with the
// tandem profile never exceeds the worse of its two legs scored alone,
// at any operating point.
func TestTandemNeverBeatsWorseLeg(t *testing.T) {
	rng := stats.NewRNG(0x7a4de)
	codecs := testCodecs()
	for _, a := range codecs {
		for _, b := range codecs {
			td := Tandem(a, b)
			for trial := 0; trial < 100; trial++ {
				m := Metrics{
					OneWayDelay: time.Duration(rng.Float64()*300) * time.Millisecond,
					LossRatio:   rng.Float64() * 0.3,
					BurstRatio:  1 + rng.Float64()*2,
				}
				worse := Score(a, m)
				if sb := Score(b, m); sb < worse {
					worse = sb
				}
				if got := Score(td, m); got > worse+1e-12 {
					t.Fatalf("Tandem(%s,%s) MOS %.6f beats worse leg %.6f at %+v",
						a.Name, b.Name, got, worse, m)
				}
			}
		}
	}
}

// TestTandemShape pins the combination rules directly.
func TestTandemShape(t *testing.T) {
	td := Tandem(G729, G711)
	if td.Ie != G729.Ie+G711.Ie {
		t.Errorf("tandem Ie = %v, want sum %v", td.Ie, G729.Ie+G711.Ie)
	}
	if td.Bpl != G711.Bpl { // G.711 is the fragile leg
		t.Errorf("tandem Bpl = %v, want min %v", td.Bpl, G711.Bpl)
	}
	// Symmetric in quality terms.
	rev := Tandem(G711, G729)
	if rev.Ie != td.Ie || rev.Bpl != td.Bpl || rev.FrameMs != td.FrameMs {
		t.Errorf("tandem not symmetric: %+v vs %+v", td, rev)
	}
	// Ie saturates at the E-model's 95 ceiling.
	heavy := Codec{Name: "x", Ie: 60, Bpl: 5, FrameMs: 20, PayloadBytes: 20}
	if got := Tandem(heavy, heavy).Ie; got != 95 {
		t.Errorf("tandem Ie ceiling = %v, want 95", got)
	}
}
