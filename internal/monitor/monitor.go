// Package monitor is the measurement plane of the testbed: the role
// Wireshark and VoIPmonitor play in the paper (Sec. III-C). It
// attaches to the simulated network as a tap — the position of a
// port-mirroring switch — classifies every datagram as SIP or RTP, and
// accumulates exactly the rows Table I reports: per-method SIP counts,
// the error-message count, and the RTP message total.
package monitor

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/netsim"
	"repro/internal/rtp"
	"repro/internal/sip"
)

// Capture accumulates wire-level counts. Attach to a network with
// Tap(); it is not safe for concurrent use (the simulator is
// single-threaded).
type Capture struct {
	// SIP message counts by row label: methods ("INVITE", "ACK",
	// "BYE", …) and status codes ("100", "180", "200", …).
	sipByKind map[string]uint64
	sipTotal  uint64
	errorMsgs uint64

	rtpPackets uint64
	rtpBytes   uint64

	unparsable uint64

	firstAt, lastAt time.Duration
	sawAny          bool

	// statusStrs interns status-code row labels and scratch holds the
	// per-packet RTP decode, so observing a packet does not allocate.
	statusStrs map[int]string
	scratch    rtp.Packet
}

// NewCapture returns an empty capture.
func NewCapture() *Capture {
	return &Capture{
		sipByKind:  make(map[string]uint64),
		statusStrs: make(map[int]string),
	}
}

// Tap returns the netsim.Tap to register with Network.AddTap.
func (c *Capture) Tap() netsim.Tap {
	return func(now time.Duration, pkt *netsim.Packet) {
		c.Observe(now, pkt.Payload)
	}
}

// Observe classifies and counts one datagram.
func (c *Capture) Observe(now time.Duration, data []byte) {
	if !c.sawAny {
		c.firstAt = now
		c.sawAny = true
	}
	c.lastAt = now

	if sip.LooksLikeSIP(data) {
		msg, err := sip.Parse(data)
		if err != nil {
			c.unparsable++
			return
		}
		c.sipTotal++
		key := ""
		if msg.IsRequest() {
			key = string(msg.Method)
		} else {
			key = c.statusKey(msg.StatusCode)
			if msg.StatusCode >= 400 {
				c.errorMsgs++
			}
		}
		c.sipByKind[key]++
		return
	}
	if err := c.scratch.Unmarshal(data); err == nil {
		c.rtpPackets++
		c.rtpBytes += uint64(c.scratch.Size())
		return
	}
	c.unparsable++
}

// Merge folds other's counts into c. A sharded run gives every shard
// its own Capture (registered with Network.AddShardTap, so each only
// sees traffic sent by its own hosts) and merges them afterwards; the
// sums equal what one capture on a single-threaded run records, since
// every packet is observed by exactly one shard's tap.
func (c *Capture) Merge(other *Capture) {
	for k, v := range other.sipByKind {
		c.sipByKind[k] += v
	}
	c.sipTotal += other.sipTotal
	c.errorMsgs += other.errorMsgs
	c.rtpPackets += other.rtpPackets
	c.rtpBytes += other.rtpBytes
	c.unparsable += other.unparsable
	if other.sawAny {
		if !c.sawAny || other.firstAt < c.firstAt {
			c.firstAt = other.firstAt
		}
		if !c.sawAny || other.lastAt > c.lastAt {
			c.lastAt = other.lastAt
		}
		c.sawAny = true
	}
}

// statusKey interns the decimal row label for a status code.
func (c *Capture) statusKey(code int) string {
	if s, ok := c.statusStrs[code]; ok {
		return s
	}
	s := strconv.Itoa(code)
	c.statusStrs[code] = s
	return s
}

// SIPCount returns the count for one row label ("INVITE", "180", …).
func (c *Capture) SIPCount(kind string) uint64 { return c.sipByKind[kind] }

// SIPTotal returns all SIP messages seen.
func (c *Capture) SIPTotal() uint64 { return c.sipTotal }

// ErrorMessages returns SIP responses with status >= 400, the
// "Error Msgs" row of Table I.
func (c *Capture) ErrorMessages() uint64 { return c.errorMsgs }

// RTPPackets returns the RTP message total, the "RTP Msg" row.
func (c *Capture) RTPPackets() uint64 { return c.rtpPackets }

// RTPBytes returns total RTP bytes.
func (c *Capture) RTPBytes() uint64 { return c.rtpBytes }

// Unparsable returns datagrams that were neither SIP nor RTP.
func (c *Capture) Unparsable() uint64 { return c.unparsable }

// Span returns the time between the first and last observed packet.
func (c *Capture) Span() time.Duration {
	if !c.sawAny {
		return 0
	}
	return c.lastAt - c.firstAt
}

// TableRow mirrors the SIP section of Table I for one experiment.
type TableRow struct {
	Invite uint64 // INVITE
	Trying uint64 // 100 TRY
	Ring   uint64 // RING (180)
	OK     uint64 // OK (200)
	Ack    uint64 // ACK
	Bye    uint64 // BYE
	Errors uint64 // Error Msgs
	Total  uint64 // SIP Messages (Total)
	RTP    uint64 // RTP Msg
}

// Row extracts the Table I SIP rows from the capture.
func (c *Capture) Row() TableRow {
	return TableRow{
		Invite: c.SIPCount("INVITE"),
		Trying: c.SIPCount("100"),
		Ring:   c.SIPCount("180"),
		OK:     c.SIPCount("200"),
		Ack:    c.SIPCount("ACK"),
		Bye:    c.SIPCount("BYE"),
		Errors: c.ErrorMessages(),
		Total:  c.SIPTotal(),
		RTP:    c.RTPPackets(),
	}
}

// String renders the capture as a protocol-analyzer style summary.
func (c *Capture) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "capture: %d SIP msgs, %d RTP pkts (%d bytes), %d errors, span %v\n",
		c.sipTotal, c.rtpPackets, c.rtpBytes, c.errorMsgs, c.Span())
	kinds := make([]string, 0, len(c.sipByKind))
	for k := range c.sipByKind {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	for _, k := range kinds {
		fmt.Fprintf(&b, "  %-8s %d\n", k, c.sipByKind[k])
	}
	return b.String()
}
