package monitor

import (
	"time"

	"repro/internal/netsim"
	"repro/internal/rtp"
	"repro/internal/sip"
	"repro/internal/transport"
)

// Second is one 1-second bucket of wire activity — the per-second
// series overload-control papers plot: offered load (INVITEs), goodput
// proxies (answers, BYEs), failure pressure (errors), and the
// retransmission amplification that drives congestion collapse.
type Second struct {
	Invites uint64 // new INVITE transactions started this second
	Answers uint64 // 200 responses to INVITE (calls answered)
	Byes    uint64 // BYE requests (calls completing)
	Errors  uint64 // responses with status >= 400
	Retrans uint64 // wire-duplicate SIP messages (retransmissions)
	RTP     uint64 // RTP packets on the wire
}

func (s *Second) add(o Second) {
	s.Invites += o.Invites
	s.Answers += o.Answers
	s.Byes += o.Byes
	s.Errors += o.Errors
	s.Retrans += o.Retrans
	s.RTP += o.RTP
}

// Timeline buckets wire activity into seconds of virtual time. Attach
// it to a network with Tap(), like Capture; not safe for concurrent
// use.
//
// Retransmissions are detected at the wire, not asked of the
// endpoints: a SIP message whose (transaction, message identity) pair
// has been seen before is a retransmission, whether the transaction
// layer resent it or the network duplicated it — exactly what a
// protocol analyzer on a mirrored port would report.
type Timeline struct {
	buckets []Second
	seen    map[string]struct{}
	clock   transport.Clock // optional; stamps ObserveNow
}

// NewTimeline returns an empty timeline.
func NewTimeline() *Timeline {
	return &Timeline{seen: make(map[string]struct{})}
}

// NewTimelineWithClock returns a timeline stamping ObserveNow calls
// from clock. Both SimClock and RealClock express Now as a
// time.Duration since their origin, so a timeline fed by a real-UDP
// tap and one fed by the simulator produce directly comparable series
// — the same clock source the telemetry Sampler uses.
func NewTimelineWithClock(clock transport.Clock) *Timeline {
	t := NewTimeline()
	t.clock = clock
	return t
}

// ObserveNow classifies one datagram stamped at the attached clock's
// current time. It requires NewTimelineWithClock.
func (t *Timeline) ObserveNow(data []byte) {
	t.Observe(t.clock.Now(), data)
}

// Tap returns the netsim.Tap to register with Network.AddTap.
func (t *Timeline) Tap() netsim.Tap {
	return func(now time.Duration, pkt *netsim.Packet) {
		t.Observe(now, pkt.Payload)
	}
}

// Observe classifies one datagram into its second bucket.
func (t *Timeline) Observe(now time.Duration, data []byte) {
	b := t.bucket(now)
	if sip.LooksLikeSIP(data) {
		msg, err := sip.Parse(data)
		if err != nil {
			return
		}
		key := msg.TransactionKey()
		if msg.IsRequest() {
			key += "|" + string(msg.Method)
		} else {
			key += "|" + itoa(msg.StatusCode)
		}
		if _, dup := t.seen[key]; dup {
			b.Retrans++
			return
		}
		t.seen[key] = struct{}{}
		switch {
		case msg.Method == sip.INVITE:
			b.Invites++
		case msg.Method == sip.BYE:
			b.Byes++
		case msg.StatusCode == sip.StatusOK && msg.CSeq.Method == sip.INVITE:
			b.Answers++
		case msg.StatusCode >= 400:
			b.Errors++
		}
		return
	}
	if _, err := rtp.Parse(data); err == nil {
		b.RTP++
	}
}

// bucket returns the bucket for the given instant, growing the series.
func (t *Timeline) bucket(now time.Duration) *Second {
	idx := int(now / time.Second)
	for len(t.buckets) <= idx {
		t.buckets = append(t.buckets, Second{})
	}
	return &t.buckets[idx]
}

// Merge folds other's buckets into t, for combining per-shard
// timelines. Retransmission detection stays exact across the split: a
// message and its wire duplicates are always sent by the same host,
// hence observed by the same shard's timeline and deduplicated against
// the same seen-set.
func (t *Timeline) Merge(other *Timeline) {
	for len(t.buckets) < len(other.buckets) {
		t.buckets = append(t.buckets, Second{})
	}
	for i := range other.buckets {
		t.buckets[i].add(other.buckets[i])
	}
}

// Buckets returns the per-second series, index 0 = virtual t in [0,1s).
func (t *Timeline) Buckets() []Second { return t.buckets }

// Totals sums the series.
func (t *Timeline) Totals() Second {
	var sum Second
	for i := range t.buckets {
		sum.add(t.buckets[i])
	}
	return sum
}

// itoa avoids importing strconv for three-digit status codes.
func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
