package monitor

import (
	"strings"
	"testing"
	"time"

	"repro/internal/rtp"
	"repro/internal/sip"
)

func sipWire(kind string) []byte {
	from := sip.NameAddr{URI: sip.NewURI("a", "h", 5060), Tag: "t1"}
	to := sip.NameAddr{URI: sip.NewURI("b", "h", 5060)}
	if code := map[string]int{"100": 100, "180": 180, "200": 200, "404": 404, "503": 503}[kind]; code != 0 {
		req := sip.NewRequest(sip.INVITE, to.URI, from, to, "c1", 1)
		req.Via = []sip.Via{{SentBy: "h:5060", Branch: "z9hG4bK1"}}
		return req.Response(code).Marshal()
	}
	req := sip.NewRequest(sip.Method(kind), to.URI, from, to, "c1", 1)
	req.Via = []sip.Via{{SentBy: "h:5060", Branch: "z9hG4bK1"}}
	return req.Marshal()
}

func rtpWire(seq uint16) []byte {
	p := rtp.Packet{Sequence: seq, SSRC: 9, Payload: make([]byte, 160)}
	return p.Marshal(nil)
}

func TestCaptureClassification(t *testing.T) {
	c := NewCapture()
	now := time.Duration(0)
	for _, k := range []string{"INVITE", "INVITE", "100", "180", "180", "200", "200", "200", "200", "ACK", "ACK", "BYE", "BYE"} {
		c.Observe(now, sipWire(k))
		now += time.Millisecond
	}
	for i := 0; i < 100; i++ {
		c.Observe(now, rtpWire(uint16(i)))
		now += time.Millisecond
	}
	row := c.Row()
	if row.Invite != 2 || row.Trying != 1 || row.Ring != 2 || row.OK != 4 || row.Ack != 2 || row.Bye != 2 {
		t.Errorf("row = %+v", row)
	}
	if row.Total != 13 {
		t.Errorf("total = %d, want 13 (one bridged call)", row.Total)
	}
	if row.RTP != 100 {
		t.Errorf("rtp = %d", row.RTP)
	}
	if row.Errors != 0 {
		t.Errorf("errors = %d", row.Errors)
	}
	if c.RTPBytes() != 100*172 {
		t.Errorf("rtp bytes = %d", c.RTPBytes())
	}
}

func TestErrorMessages(t *testing.T) {
	c := NewCapture()
	c.Observe(0, sipWire("404"))
	c.Observe(0, sipWire("503"))
	c.Observe(0, sipWire("200"))
	if c.ErrorMessages() != 2 {
		t.Errorf("errors = %d, want 2", c.ErrorMessages())
	}
	if c.SIPTotal() != 3 {
		t.Errorf("total = %d", c.SIPTotal())
	}
}

func TestUnparsableCounted(t *testing.T) {
	c := NewCapture()
	c.Observe(0, []byte("not anything recognizable here"))
	c.Observe(0, []byte{0x80}) // too short for RTP
	if c.Unparsable() != 2 {
		t.Errorf("unparsable = %d", c.Unparsable())
	}
	if c.SIPTotal() != 0 || c.RTPPackets() != 0 {
		t.Error("garbage counted as traffic")
	}
}

func TestSpan(t *testing.T) {
	c := NewCapture()
	if c.Span() != 0 {
		t.Error("empty capture has nonzero span")
	}
	c.Observe(10*time.Second, rtpWire(0))
	c.Observe(25*time.Second, rtpWire(1))
	if c.Span() != 15*time.Second {
		t.Errorf("span = %v", c.Span())
	}
}

func TestSIPCountByKind(t *testing.T) {
	c := NewCapture()
	c.Observe(0, sipWire("REGISTER"))
	c.Observe(0, sipWire("REGISTER"))
	if c.SIPCount("REGISTER") != 2 {
		t.Errorf("REGISTER = %d", c.SIPCount("REGISTER"))
	}
	if c.SIPCount("INVITE") != 0 {
		t.Error("phantom INVITEs")
	}
}

func TestStringSummary(t *testing.T) {
	c := NewCapture()
	c.Observe(0, sipWire("INVITE"))
	c.Observe(0, rtpWire(1))
	s := c.String()
	for _, want := range []string{"1 SIP msgs", "1 RTP pkts", "INVITE"} {
		if !strings.Contains(s, want) {
			t.Errorf("summary missing %q:\n%s", want, s)
		}
	}
}

func BenchmarkObserveSIP(b *testing.B) {
	c := NewCapture()
	wire := sipWire("INVITE")
	b.SetBytes(int64(len(wire)))
	for i := 0; i < b.N; i++ {
		c.Observe(time.Duration(i), wire)
	}
}

func BenchmarkObserveRTP(b *testing.B) {
	c := NewCapture()
	wire := rtpWire(1)
	b.SetBytes(int64(len(wire)))
	for i := 0; i < b.N; i++ {
		c.Observe(time.Duration(i), wire)
	}
}
