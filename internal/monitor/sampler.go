package monitor

import (
	"encoding/csv"
	"fmt"
	"io"
	"time"

	"repro/internal/netsim"
	"repro/internal/telemetry"
	"repro/internal/transport"
)

// Sample is one per-second reading of the experiment: per-tick deltas
// of the load counters, the instantaneous channel gauge, and
// setup-latency quantiles over the calls that completed setup during
// the tick — the rows behind a Fig. 5-style blocking-vs-time plot.
type Sample struct {
	T        float64 `json:"t"`        // seconds since sampling started
	Offered  uint64  `json:"offered"`  // new INVITEs this second
	Blocked  uint64  `json:"blocked"`  // admission rejections this second
	Answered uint64  `json:"answered"` // calls established this second
	Active   int     `json:"active"`   // channels in use at tick time
	Retrans  uint64  `json:"retrans"`  // SIP retransmissions this second
	RTP      uint64  `json:"rtp"`      // relayed RTP packets this second
	Drops    uint64  `json:"drops"`    // relay packets dropped this second
	// Blocking is Blocked/Offered within the tick; 0 with no offers.
	Blocking float64 `json:"blocking"`
	// SetupN and the quantiles describe INVITE→200 setup times recorded
	// this second (zero when no call completed setup).
	SetupN   uint64  `json:"setup_n"`
	SetupP50 float64 `json:"setup_p50"`
	SetupP90 float64 `json:"setup_p90"`
	SetupP99 float64 `json:"setup_p99"`
	// MeasuredN and MeasuredP50 describe the sensor-measured MOS of
	// calls that tore down this second (zero when none carried media).
	MeasuredN   uint64  `json:"mos_n"`
	MeasuredP50 float64 `json:"mos_p50"`
}

// Sampler polls a telemetry registry once per clock second and
// accumulates the per-second series. It pre-resolves every handle at
// construction — each tick is then a handful of atomic loads plus one
// Sample append, cheap enough that the engine's allocs/op budget is
// unaffected (a full Registry.Snapshot per tick would not be).
//
// The clock is the single time source shared with the PBX tracer and
// the wire Timeline, so simulated and real-UDP runs yield comparable
// series.
type Sampler struct {
	clock transport.Clock
	timer transport.RearmTimer

	offered  func() float64
	blocked  func() float64
	answered func() float64
	active   func() float64
	retrans  func() float64
	rtp      func() float64
	drops    func() float64

	setup       *telemetry.Histogram
	setupBounds []float64
	cur, prev   []uint64 // histogram scratch, preallocated
	delta       []uint64
	prevCount   uint64

	measured       *telemetry.Histogram
	measuredBounds []float64
	mCur, mPrev    []uint64
	mDelta         []uint64
	mPrevCount     uint64

	prevOffered, prevBlocked, prevAnswered float64
	prevRetrans, prevRTP, prevDrops        float64

	// observer, when set, sees every finished Sample in tick order —
	// the hook the SLO evaluator rides on.
	observer func(Sample)

	start   time.Duration
	lastT   time.Duration
	samples []Sample
	stopped bool
}

// zero is the reader for families a run did not register.
func zero() float64 { return 0 }

func reader(reg *telemetry.Registry, name string) func() float64 {
	if fn := reg.ValueFunc(name); fn != nil {
		return fn
	}
	return zero
}

// NewSampler binds a sampler to the registry's PBX/SIP/relay families.
// Missing families read as zero, so signalling-only or partially
// instrumented runs still sample.
func NewSampler(reg *telemetry.Registry, clock transport.Clock) *Sampler {
	sp := &Sampler{
		clock:    clock,
		offered:  reader(reg, "pbx_invites_total"),
		blocked:  reader(reg, "pbx_blocked_total"),
		answered: reader(reg, "pbx_calls_established_total"),
		active:   reader(reg, "pbx_active_channels"),
		retrans:  reader(reg, "sip_retransmissions_total"),
		rtp:      reader(reg, "rtp_relay_packets_total"),
		drops:    reader(reg, "rtp_relay_dropped_total"),
		setup:    reg.FindHistogram("pbx_call_setup_seconds"),
		measured: reg.FindHistogram("pbx_call_mos_measured"),
	}
	if sp.setup != nil {
		n := sp.setup.NumBuckets()
		sp.setupBounds = sp.setup.Bounds()
		sp.cur = make([]uint64, n)
		sp.prev = make([]uint64, n)
		sp.delta = make([]uint64, n)
	}
	if sp.measured != nil {
		n := sp.measured.NumBuckets()
		sp.measuredBounds = sp.measured.Bounds()
		sp.mCur = make([]uint64, n)
		sp.mPrev = make([]uint64, n)
		sp.mDelta = make([]uint64, n)
	}
	return sp
}

// SetObserver installs a per-sample hook (e.g. the SLO evaluator),
// invoked synchronously after each tick's Sample is complete. Must be
// set before Start.
func (sp *Sampler) SetObserver(fn func(Sample)) { sp.observer = fn }

// Start begins per-second sampling at the next whole second. The tick
// reuses one rearmed timer, so steady-state sampling allocates only
// the appended Sample rows.
func (sp *Sampler) Start() {
	sp.start = sp.clock.Now()
	sp.lastT = sp.start
	sp.timer = transport.NewRearmTimer(sp.clock, sp.tick)
	sp.timer.Schedule(time.Second)
}

func (sp *Sampler) tick() {
	if sp.stopped {
		return
	}
	sp.observe(sp.clock.Now())
	sp.timer.Schedule(time.Second)
}

// observe appends one sample at virtual time now.
func (sp *Sampler) observe(now time.Duration) {
	s := Sample{
		T:      (now - sp.start).Seconds(),
		Active: int(sp.active()),
	}
	offered, blocked, answered := sp.offered(), sp.blocked(), sp.answered()
	retrans, rtpPkts, drops := sp.retrans(), sp.rtp(), sp.drops()
	s.Offered = uint64(offered - sp.prevOffered)
	s.Blocked = uint64(blocked - sp.prevBlocked)
	s.Answered = uint64(answered - sp.prevAnswered)
	s.Retrans = uint64(retrans - sp.prevRetrans)
	s.RTP = uint64(rtpPkts - sp.prevRTP)
	s.Drops = uint64(drops - sp.prevDrops)
	sp.prevOffered, sp.prevBlocked, sp.prevAnswered = offered, blocked, answered
	sp.prevRetrans, sp.prevRTP, sp.prevDrops = retrans, rtpPkts, drops
	if s.Offered > 0 {
		s.Blocking = float64(s.Blocked) / float64(s.Offered)
	}

	if sp.setup != nil {
		count, _ := sp.setup.Load(sp.cur)
		s.SetupN = count - sp.prevCount
		if s.SetupN > 0 {
			for i := range sp.cur {
				sp.delta[i] = sp.cur[i] - sp.prev[i]
			}
			s.SetupP50 = telemetry.QuantileFromCounts(sp.setupBounds, sp.delta, 0.50)
			s.SetupP90 = telemetry.QuantileFromCounts(sp.setupBounds, sp.delta, 0.90)
			s.SetupP99 = telemetry.QuantileFromCounts(sp.setupBounds, sp.delta, 0.99)
		}
		sp.cur, sp.prev = sp.prev, sp.cur
		sp.prevCount = count
	}

	if sp.measured != nil {
		count, _ := sp.measured.Load(sp.mCur)
		s.MeasuredN = count - sp.mPrevCount
		if s.MeasuredN > 0 {
			for i := range sp.mCur {
				sp.mDelta[i] = sp.mCur[i] - sp.mPrev[i]
			}
			s.MeasuredP50 = telemetry.QuantileFromCounts(sp.measuredBounds, sp.mDelta, 0.50)
		}
		sp.mCur, sp.mPrev = sp.mPrev, sp.mCur
		sp.mPrevCount = count
	}

	sp.samples = append(sp.samples, s)
	sp.lastT = now
	if sp.observer != nil {
		sp.observer(s)
	}
}

// Stop halts sampling, flushing a final partial-second sample when
// time advanced past the last tick.
func (sp *Sampler) Stop() { sp.StopAt(sp.clock.Now()) }

// StopAt halts sampling with the final partial-second sample stamped at
// now — the virtual time the stopping decision was made. A sharded run
// stages the stop as a barrier control, so the clock has moved past the
// decision by the time it applies; passing the decision time keeps the
// flushed sample identical to the single-threaded engine's.
func (sp *Sampler) StopAt(now time.Duration) {
	if sp.stopped {
		return
	}
	sp.stopped = true
	if sp.timer != nil {
		sp.timer.Stop()
	}
	if now > sp.lastT {
		sp.observe(now)
	}
}

// Samples returns the collected series.
func (sp *Sampler) Samples() []Sample { return sp.samples }

// WriteSamplesCSV exports a series with one row per second.
func WriteSamplesCSV(w io.Writer, samples []Sample) error {
	cw := csv.NewWriter(w)
	header := []string{
		"t", "offered", "blocked", "answered", "active",
		"retrans", "rtp", "drops", "blocking", "setup_n", "setup_p50", "setup_p90", "setup_p99",
		"mos_n", "mos_p50",
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, s := range samples {
		rec := []string{
			fmt.Sprintf("%.3f", s.T),
			fmt.Sprintf("%d", s.Offered),
			fmt.Sprintf("%d", s.Blocked),
			fmt.Sprintf("%d", s.Answered),
			fmt.Sprintf("%d", s.Active),
			fmt.Sprintf("%d", s.Retrans),
			fmt.Sprintf("%d", s.RTP),
			fmt.Sprintf("%d", s.Drops),
			fmt.Sprintf("%.4f", s.Blocking),
			fmt.Sprintf("%d", s.SetupN),
			fmt.Sprintf("%.4f", s.SetupP50),
			fmt.Sprintf("%.4f", s.SetupP90),
			fmt.Sprintf("%.4f", s.SetupP99),
			fmt.Sprintf("%d", s.MeasuredN),
			fmt.Sprintf("%.2f", s.MeasuredP50),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// SchedStatser is anything exposing scheduler counters: a single
// netsim.Scheduler or a netsim.ShardGroup summing across shards.
type SchedStatser interface {
	Stats() netsim.SchedStats
}

// Scheduler telemetry family names (see the lint-metrics rule: one
// snake_case const per family, registrations only through it).
const (
	mSchedEvents    = "sched_events_total"
	mSchedScheduled = "sched_scheduled_total"
	mSchedCancelled = "sched_cancelled_total"
	mSchedPending   = "sched_pending_events"
	mSchedWheel     = "sched_wheel_items"
	mSchedOverflow  = "sched_overflow_depth"
	mSchedVirtual   = "sched_virtual_seconds"
)

// RegisterScheduler exposes the netsim scheduler's internals as
// pull-style sched_* families: the values are read from
// Scheduler.Stats() when a snapshot or exposition runs, so the event
// loop itself pays nothing per event.
func RegisterScheduler(reg *telemetry.Registry, sched SchedStatser) {
	reg.CounterFunc(mSchedEvents, "events fired by the virtual-time scheduler",
		func() float64 { return float64(sched.Stats().Fired) })
	reg.CounterFunc(mSchedScheduled, "events ever scheduled",
		func() float64 { return float64(sched.Stats().Scheduled) })
	reg.CounterFunc(mSchedCancelled, "timers stopped before firing",
		func() float64 { return float64(sched.Stats().Cancelled) })
	reg.GaugeFunc(mSchedPending, "live scheduled events",
		func() float64 { return float64(sched.Stats().Pending) })
	reg.GaugeFunc(mSchedWheel, "items resident in timing-wheel slots",
		func() float64 { return float64(sched.Stats().WheelItems) })
	reg.GaugeFunc(mSchedOverflow, "far-future items in the overflow heap",
		func() float64 { return float64(sched.Stats().OverflowDepth) })
	reg.GaugeFunc(mSchedVirtual, "virtual time at snapshot",
		func() float64 { return sched.Stats().Now.Seconds() })
}
