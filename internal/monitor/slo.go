package monitor

import "repro/internal/telemetry"

// SLO rule names — the {rule} label values of pbx_slo_breach_total.
const (
	RuleBlocking = "blocking"
	RuleMOSFloor = "mos_floor"
	RuleDropRate = "drop_rate"
)

// SLO telemetry family names.
const (
	mSLOBreach = "pbx_slo_breach_total"
	mSLOActive = "pbx_slo_active_breaches"
)

// SLORules are the per-second service-level objectives an experiment is
// judged against. The zero value of a field disables that rule.
type SLORules struct {
	// MaxBlocking is the per-tick blocking-probability ceiling
	// (Blocked/Offered); evaluated only on ticks offering at least
	// MinOffered calls so a single blocked call in a quiet second does
	// not page.
	MaxBlocking float64 `json:"max_blocking"`
	MinOffered  uint64  `json:"min_offered"`
	// MinMOS is the floor on the tick's median measured MOS, evaluated
	// only on ticks where calls with media tore down.
	MinMOS float64 `json:"min_mos"`
	// MaxDropRate bounds relay packet drops as a fraction of relay
	// traffic (drops / (forwarded + dropped)) within the tick.
	MaxDropRate float64 `json:"max_drop_rate"`
}

// DefaultSLORules mirror the paper's quality bars: ~1% blocking (the
// Erlang-B target of Table III), the 3.5 "acceptable" MOS boundary, and
// a 5% packet-error budget (the A=240 overload signature).
func DefaultSLORules() SLORules {
	return SLORules{
		MaxBlocking: 0.01,
		MinOffered:  5,
		MinMOS:      3.5,
		MaxDropRate: 0.05,
	}
}

// Breach is one rule violation at one sampler tick.
type Breach struct {
	Rule  string  `json:"rule"`
	T     float64 `json:"t"`     // seconds since sampling started
	Value float64 `json:"value"` // the observed value that broke the rule
}

// SLO evaluates SLORules over the sampler's per-second series. Feed it
// through Sampler.SetObserver; every evaluation is pure arithmetic on
// the finished Sample, so the verdict sequence is deterministic for a
// deterministic series. Each rule's breach counter is registered up
// front (even if never incremented), keeping the exposition shape
// independent of traffic.
type SLO struct {
	rules SLORules

	breachBlocking *telemetry.Counter
	breachMOS      *telemetry.Counter
	breachDrops    *telemetry.Counter
	activeGauge    *telemetry.Gauge

	active   map[string]bool
	breaches []Breach
}

// NewSLO registers the SLO families on reg and returns the evaluator.
func NewSLO(reg *telemetry.Registry, rules SLORules) *SLO {
	return &SLO{
		rules: rules,
		breachBlocking: reg.Counter(mSLOBreach, "sampler ticks violating an SLO rule",
			telemetry.L("rule", RuleBlocking)),
		breachMOS: reg.Counter(mSLOBreach, "sampler ticks violating an SLO rule",
			telemetry.L("rule", RuleMOSFloor)),
		breachDrops: reg.Counter(mSLOBreach, "sampler ticks violating an SLO rule",
			telemetry.L("rule", RuleDropRate)),
		activeGauge: reg.Gauge(mSLOActive, "SLO rules in breach at the latest sampler tick"),
		active:      make(map[string]bool, 3),
	}
}

// Observe evaluates every rule against one finished sample.
func (o *SLO) Observe(s Sample) {
	if o.rules.MaxBlocking > 0 && s.Offered >= o.rules.MinOffered {
		o.judge(RuleBlocking, o.breachBlocking, s.T, s.Blocking, s.Blocking > o.rules.MaxBlocking)
	}
	if o.rules.MinMOS > 0 && s.MeasuredN > 0 {
		o.judge(RuleMOSFloor, o.breachMOS, s.T, s.MeasuredP50, s.MeasuredP50 < o.rules.MinMOS)
	}
	if o.rules.MaxDropRate > 0 && s.RTP+s.Drops > 0 {
		rate := float64(s.Drops) / float64(s.RTP+s.Drops)
		o.judge(RuleDropRate, o.breachDrops, s.T, rate, rate > o.rules.MaxDropRate)
	}
	n := 0
	for _, on := range o.active {
		if on {
			n++
		}
	}
	o.activeGauge.SetInt(n)
}

// judge records one rule's verdict for the tick.
func (o *SLO) judge(rule string, c *telemetry.Counter, t, value float64, broken bool) {
	o.active[rule] = broken
	if !broken {
		return
	}
	c.Inc()
	o.breaches = append(o.breaches, Breach{Rule: rule, T: t, Value: value})
}

// Breaches returns the breach timeline in tick order.
func (o *SLO) Breaches() []Breach { return o.breaches }
