package monitor

import (
	"testing"
	"time"

	"repro/internal/sip"
)

// wire builds a message on its own transaction branch so distinct
// calls don't collide in the timeline's duplicate detector.
func wire(branch, kind string) []byte {
	from := sip.NameAddr{URI: sip.NewURI("a", "h", 5060), Tag: "t1"}
	to := sip.NameAddr{URI: sip.NewURI("b", "h", 5060)}
	if code := map[string]int{"100": 100, "180": 180, "200": 200, "404": 404, "503": 503}[kind]; code != 0 {
		req := sip.NewRequest(sip.INVITE, to.URI, from, to, "c-"+branch, 1)
		req.Via = []sip.Via{{SentBy: "h:5060", Branch: sip.BranchPrefix + branch}}
		return req.Response(code).Marshal()
	}
	req := sip.NewRequest(sip.Method(kind), to.URI, from, to, "c-"+branch, 1)
	req.Via = []sip.Via{{SentBy: "h:5060", Branch: sip.BranchPrefix + branch}}
	return req.Marshal()
}

func TestTimelineBuckets(t *testing.T) {
	tl := NewTimeline()
	// Second 0: one call setup.
	tl.Observe(0, wire("b1", "INVITE"))
	tl.Observe(100*time.Millisecond, wire("b1", "200"))
	// Second 1: a rejection and a hangup.
	tl.Observe(1100*time.Millisecond, wire("b2", "INVITE"))
	tl.Observe(1200*time.Millisecond, wire("b2", "503"))
	tl.Observe(1500*time.Millisecond, wire("b3", "BYE"))
	// Second 3 (skipping 2): RTP.
	tl.Observe(3*time.Second, rtpWire(1))
	tl.Observe(3*time.Second+20*time.Millisecond, rtpWire(2))

	b := tl.Buckets()
	if len(b) != 4 {
		t.Fatalf("buckets = %d, want 4", len(b))
	}
	if b[0].Invites != 1 || b[0].Answers != 1 {
		t.Errorf("second 0 = %+v", b[0])
	}
	if b[1].Invites != 1 || b[1].Errors != 1 || b[1].Byes != 1 {
		t.Errorf("second 1 = %+v", b[1])
	}
	if b[2] != (Second{}) {
		t.Errorf("second 2 = %+v, want empty", b[2])
	}
	if b[3].RTP != 2 {
		t.Errorf("second 3 = %+v", b[3])
	}
	tot := tl.Totals()
	if tot.Invites != 2 || tot.Answers != 1 || tot.Errors != 1 || tot.Byes != 1 || tot.RTP != 2 {
		t.Errorf("totals = %+v", tot)
	}
}

func TestTimelineCountsRetransmissions(t *testing.T) {
	tl := NewTimeline()
	// The same INVITE three times (two retransmissions), the same 503
	// twice (one retransmission).
	tl.Observe(0, wire("b1", "INVITE"))
	tl.Observe(500*time.Millisecond, wire("b1", "INVITE"))
	tl.Observe(1500*time.Millisecond, wire("b1", "INVITE"))
	tl.Observe(1600*time.Millisecond, wire("b1", "503"))
	tl.Observe(2100*time.Millisecond, wire("b1", "503"))

	tot := tl.Totals()
	if tot.Invites != 1 {
		t.Errorf("invites = %d, want 1 (duplicates excluded)", tot.Invites)
	}
	if tot.Errors != 1 {
		t.Errorf("errors = %d, want 1", tot.Errors)
	}
	if tot.Retrans != 3 {
		t.Errorf("retrans = %d, want 3", tot.Retrans)
	}
	b := tl.Buckets()
	if b[0].Retrans != 1 || b[1].Retrans != 1 || b[2].Retrans != 1 {
		t.Errorf("retrans buckets = %+v %+v %+v", b[0], b[1], b[2])
	}
	// Distinct finals on the same transaction are not duplicates.
	tl.Observe(2200*time.Millisecond, wire("b1", "200"))
	if tl.Totals().Retrans != 3 {
		t.Errorf("a different status counted as a retransmission")
	}
}
