package monitor

import (
	"strings"
	"testing"
	"time"
)

func traceWithOneCall() *FlowTrace {
	f := NewFlowTrace()
	seq := []struct {
		src, dst, kind string
	}{
		{"gen", "pbx", "INVITE"},
		{"pbx", "gen", "100"},
		{"pbx", "recv", "INVITE"},
		{"recv", "pbx", "180"},
		{"pbx", "gen", "180"},
		{"recv", "pbx", "200"},
		{"pbx", "recv", "ACK"},
		{"pbx", "gen", "200"},
		{"gen", "pbx", "ACK"},
		{"gen", "pbx", "BYE"},
		{"pbx", "gen", "200"},
		{"pbx", "recv", "BYE"},
		{"recv", "pbx", "200"},
	}
	now := time.Duration(0)
	for _, s := range seq {
		f.Observe(now, s.src, s.dst, sipWire(s.kind))
		now += 2 * time.Millisecond
	}
	return f
}

func TestFlowTraceRecordsThirteenMessages(t *testing.T) {
	f := traceWithOneCall()
	if len(f.Events()) != 13 {
		t.Fatalf("events = %d, want 13", len(f.Events()))
	}
	hosts := f.Hosts()
	if len(hosts) != 3 || hosts[0] != "gen" || hosts[1] != "pbx" || hosts[2] != "recv" {
		t.Errorf("hosts = %v", hosts)
	}
}

func TestFlowTraceIgnoresNonSIP(t *testing.T) {
	f := NewFlowTrace()
	f.Observe(0, "a", "b", rtpWire(1))
	f.Observe(0, "a", "b", []byte("junk"))
	if len(f.Events()) != 0 {
		t.Errorf("non-SIP recorded: %d", len(f.Events()))
	}
}

func TestFlowTraceCap(t *testing.T) {
	f := &FlowTrace{MaxEvents: 3}
	for i := 0; i < 10; i++ {
		f.Observe(0, "a", "b", sipWire("INVITE"))
	}
	if len(f.Events()) != 3 {
		t.Errorf("cap ignored: %d", len(f.Events()))
	}
}

func TestFlowRender(t *testing.T) {
	f := traceWithOneCall()
	var sb strings.Builder
	f.Render(&sb, []string{"gen", "pbx", "recv"})
	out := sb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Header + 13 message rows.
	if len(lines) != 14 {
		t.Fatalf("rendered %d lines, want 14:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "gen") || !strings.Contains(lines[0], "pbx") {
		t.Errorf("header: %q", lines[0])
	}
	// First message flows rightward gen→pbx.
	if !strings.Contains(lines[1], "INVITE") || !strings.Contains(lines[1], ">") {
		t.Errorf("first row: %q", lines[1])
	}
	// Second flows leftward pbx→gen.
	if !strings.Contains(lines[2], "100 Trying") || !strings.Contains(lines[2], "<") {
		t.Errorf("second row: %q", lines[2])
	}
	// No doubled lifeline pipes anywhere.
	if strings.Contains(out, "||") {
		t.Errorf("doubled pipes in render:\n%s", out)
	}
}

func TestFlowRenderEmpty(t *testing.T) {
	var sb strings.Builder
	NewFlowTrace().Render(&sb, nil)
	if !strings.Contains(sb.String(), "no SIP messages") {
		t.Errorf("empty render: %q", sb.String())
	}
}

func TestFlowSummary(t *testing.T) {
	f := traceWithOneCall()
	s := f.Summary()
	for _, want := range []string{"INVITE x2", "ACK x2", "BYE x2", "200 OK x4", "180 Ringing x2", "100 Trying x1"} {
		if !strings.Contains(s, want) {
			t.Errorf("summary missing %q: %s", want, s)
		}
	}
}

func TestFlowFilterCall(t *testing.T) {
	f := NewFlowTrace()
	f.Observe(0, "a", "b", sipWire("INVITE")) // CallID "c1" per sipWire
	other := NewFlowTrace()
	_ = other
	got := f.FilterCall("c1")
	if len(got.Events()) != 1 {
		t.Errorf("filter kept %d", len(got.Events()))
	}
	if len(f.FilterCall("nope").Events()) != 0 {
		t.Error("filter leaked foreign call")
	}
}
