package monitor

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"repro/internal/netsim"
	"repro/internal/sip"
)

// FlowEvent is one SIP message observed on the wire, with enough
// context to draw it on a ladder diagram.
type FlowEvent struct {
	At      time.Duration
	SrcHost string
	DstHost string
	Label   string // "INVITE", "180 Ringing", …
	CallID  string
}

// FlowTrace records the SIP message sequence the way Fig. 2 of the
// paper draws it: a message ladder between the call generator, the
// Asterisk server and the call receiver. Attach it as a network tap.
type FlowTrace struct {
	events []FlowEvent
	// MaxEvents bounds memory on long runs; 0 means 10000.
	MaxEvents int
}

// NewFlowTrace returns an empty trace.
func NewFlowTrace() *FlowTrace { return &FlowTrace{} }

// Tap returns the netsim.Tap to register with Network.AddTap.
func (f *FlowTrace) Tap() netsim.Tap {
	return func(now time.Duration, pkt *netsim.Packet) {
		f.Observe(now, pkt.Src.Host, pkt.Dst.Host, pkt.Payload)
	}
}

// Observe records one datagram if it is SIP.
func (f *FlowTrace) Observe(now time.Duration, srcHost, dstHost string, data []byte) {
	limit := f.MaxEvents
	if limit == 0 {
		limit = 10000
	}
	if len(f.events) >= limit || !sip.LooksLikeSIP(data) {
		return
	}
	msg, err := sip.Parse(data)
	if err != nil {
		return
	}
	label := ""
	if msg.IsRequest() {
		label = string(msg.Method)
	} else {
		label = fmt.Sprintf("%d %s", msg.StatusCode, msg.Reason())
	}
	f.events = append(f.events, FlowEvent{
		At:      now,
		SrcHost: srcHost,
		DstHost: dstHost,
		Label:   label,
		CallID:  msg.CallID,
	})
}

// Events returns the recorded sequence.
func (f *FlowTrace) Events() []FlowEvent { return f.events }

// ObserveEvent appends an already-decoded event, used when filtering
// one trace into another.
func (f *FlowTrace) ObserveEvent(e FlowEvent) {
	limit := f.MaxEvents
	if limit == 0 {
		limit = 10000
	}
	if len(f.events) < limit {
		f.events = append(f.events, e)
	}
}

// Hosts returns the hosts that appear in the trace, in order of first
// appearance — the ladder's columns.
func (f *FlowTrace) Hosts() []string {
	seen := make(map[string]bool)
	var hosts []string
	for _, e := range f.events {
		for _, h := range []string{e.SrcHost, e.DstHost} {
			if !seen[h] {
				seen[h] = true
				hosts = append(hosts, h)
			}
		}
	}
	return hosts
}

// Render draws the trace as a textual message sequence chart, the
// shape of the paper's Fig. 2. hosts orders the columns; nil uses
// first-appearance order.
func (f *FlowTrace) Render(w io.Writer, hosts []string) {
	if hosts == nil {
		hosts = f.Hosts()
	}
	if len(hosts) == 0 {
		fmt.Fprintln(w, "(no SIP messages captured)")
		return
	}
	const colWidth = 22
	col := make(map[string]int, len(hosts))
	for i, h := range hosts {
		col[h] = i
	}

	// Header.
	var head strings.Builder
	for _, h := range hosts {
		head.WriteString(center(h, colWidth))
	}
	fmt.Fprintln(w, strings.TrimRight(head.String(), " "))

	for _, e := range f.events {
		si, sok := col[e.SrcHost]
		di, dok := col[e.DstHost]
		if !sok || !dok || si == di {
			continue
		}
		lo, hi := si, di
		rightward := true
		if lo > hi {
			lo, hi = hi, lo
			rightward = false
		}
		span := (hi - lo) * colWidth
		label := e.Label
		if len(label) > span-4 {
			label = label[:span-4]
		}
		// The arrow body spans the gap between the two lifeline pipes
		// (span-1 characters), with the head against the destination.
		dashes := span - 1 - len(label) - 1
		if dashes < 0 {
			dashes = 0
		}
		pre := dashes / 2
		post := dashes - pre
		var arrow string
		if rightward {
			arrow = "|" + strings.Repeat("-", pre) + label + strings.Repeat("-", post) + ">"
		} else {
			arrow = "<" + strings.Repeat("-", pre) + label + strings.Repeat("-", post+1)
		}
		row := buildRow(hosts, colWidth, lo, hi, arrow)
		fmt.Fprintf(w, "%s  (t=%s)\n", strings.TrimRight(row, " "), e.At.Round(time.Millisecond))
	}
}

// buildRow places pipe characters at idle lifelines and the arrow
// between columns lo and hi.
func buildRow(hosts []string, colWidth, lo, hi int, arrow string) string {
	row := make([]byte, len(hosts)*colWidth)
	for i := range row {
		row[i] = ' '
	}
	for i := range hosts {
		row[i*colWidth+colWidth/2] = '|'
	}
	start := lo*colWidth + colWidth/2
	end := hi*colWidth + colWidth/2
	seg := []byte(arrow)
	// Fit the arrow exactly between the two lifelines.
	if len(seg) > end-start+1 {
		seg = seg[:end-start+1]
	}
	copy(row[start:], seg)
	return string(row)
}

func center(s string, width int) string {
	if len(s) >= width {
		return s[:width]
	}
	left := (width - len(s)) / 2
	return strings.Repeat(" ", left) + s + strings.Repeat(" ", width-left-len(s))
}

// FilterCall returns a new trace containing only events whose Call-ID
// is id (one leg of a bridged call).
func (f *FlowTrace) FilterCall(id string) *FlowTrace {
	out := &FlowTrace{MaxEvents: f.MaxEvents}
	for _, e := range f.events {
		if e.CallID == id {
			out.events = append(out.events, e)
		}
	}
	return out
}

// Summary returns "label xN" counts sorted by label, a compact check
// that a trace matches the expected flow.
func (f *FlowTrace) Summary() string {
	counts := make(map[string]int)
	for _, e := range f.events {
		counts[e.Label]++
	}
	labels := make([]string, 0, len(counts))
	for l := range counts {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	var b strings.Builder
	for i, l := range labels {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s x%d", l, counts[l])
	}
	return b.String()
}
