package directory

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestAddLookup(t *testing.T) {
	d := New()
	if err := d.AddUser(User{Username: "alice", Password: "pw"}); err != nil {
		t.Fatal(err)
	}
	u, err := d.Lookup("alice")
	if err != nil || u.Password != "pw" {
		t.Fatalf("lookup: %+v, %v", u, err)
	}
	if _, err := d.Lookup("nobody"); !errors.Is(err, ErrNoSuchUser) {
		t.Errorf("missing user error = %v", err)
	}
}

func TestAddDuplicate(t *testing.T) {
	d := New()
	d.AddUser(User{Username: "alice", Password: "a"})
	if err := d.AddUser(User{Username: "alice", Password: "b"}); !errors.Is(err, ErrDuplicateUser) {
		t.Errorf("duplicate error = %v", err)
	}
	// Original untouched.
	u, _ := d.Lookup("alice")
	if u.Password != "a" {
		t.Error("duplicate add overwrote user")
	}
}

func TestAddEmptyUsername(t *testing.T) {
	if err := New().AddUser(User{}); err == nil {
		t.Error("empty username accepted")
	}
}

func TestAuthenticate(t *testing.T) {
	d := New()
	d.AddUser(User{Username: "alice", Password: "pw"})
	if !d.Authenticate("alice", "pw") {
		t.Error("valid credentials rejected")
	}
	if d.Authenticate("alice", "nope") {
		t.Error("wrong password accepted")
	}
	if d.Authenticate("ghost", "pw") {
		t.Error("unknown user accepted")
	}
}

func TestProvision(t *testing.T) {
	d := New()
	names := d.Provision("u", 1000, 50)
	if len(names) != 50 || d.Users() != 50 {
		t.Fatalf("provisioned %d users", d.Users())
	}
	if names[0] != "u1000" || names[49] != "u1049" {
		t.Errorf("names: %v ... %v", names[0], names[49])
	}
	if !d.Authenticate("u1007", "pw-u1007") {
		t.Error("provisioned credentials do not verify")
	}
	// Re-provisioning the same range adds nothing.
	if again := d.Provision("u", 1000, 50); len(again) != 0 {
		t.Errorf("re-provision created %d users", len(again))
	}
}

func TestRegisterContactLifecycle(t *testing.T) {
	d := New()
	d.AddUser(User{Username: "alice", Password: "pw"})
	if err := d.Register("alice", "10.0.0.2:5060", 0, time.Hour); err != nil {
		t.Fatal(err)
	}
	c, ok := d.Contact("alice", 30*time.Minute)
	if !ok || c != "10.0.0.2:5060" {
		t.Fatalf("contact = %q ok=%v", c, ok)
	}
	// Expired binding is invisible.
	if _, ok := d.Contact("alice", 2*time.Hour); ok {
		t.Error("expired binding returned")
	}
	// TTL 0 unregisters.
	d.Register("alice", "10.0.0.2:5060", 0, time.Hour)
	d.Register("alice", "10.0.0.2:5060", 0, 0)
	if _, ok := d.Contact("alice", time.Minute); ok {
		t.Error("binding survived ttl-0 register")
	}
}

func TestRegisterUnknownUser(t *testing.T) {
	d := New()
	if err := d.Register("ghost", "x:1", 0, time.Hour); !errors.Is(err, ErrNoSuchUser) {
		t.Errorf("err = %v", err)
	}
}

func TestRegisteredCount(t *testing.T) {
	d := New()
	d.Provision("u", 0, 10)
	for i := 0; i < 5; i++ {
		d.Register(fmt.Sprintf("u%d", i), "h:1", 0, time.Hour)
	}
	d.Register("u0", "h:1", 0, time.Millisecond) // will expire
	if got := d.Registered(time.Minute); got != 4 {
		t.Errorf("registered = %d, want 4", got)
	}
}

func TestUnregister(t *testing.T) {
	d := New()
	d.AddUser(User{Username: "a", Password: "p"})
	d.Register("a", "h:1", 0, time.Hour)
	d.Unregister("a")
	if _, ok := d.Contact("a", 0); ok {
		t.Error("contact survived Unregister")
	}
}

func TestConcurrentAccess(t *testing.T) {
	d := New()
	d.Provision("u", 0, 100)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				user := fmt.Sprintf("u%d", (g*1000+i)%100)
				d.Register(user, "h:1", 0, time.Hour)
				d.Contact(user, time.Minute)
				d.Authenticate(user, "pw-"+user)
			}
		}(g)
	}
	wg.Wait()
	if got := d.Registered(time.Minute); got != 100 {
		t.Errorf("registered = %d", got)
	}
}
