package directory

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/sip"
)

// answer computes the digest response a well-behaved client would send
// for the given nonce, via the same public helpers the phone uses.
func answer(user, realm, password, nonce, uri string) string {
	ch := sip.DigestChallenge{Realm: realm, Nonce: nonce}
	return ch.Answer(user, password, sip.REGISTER, uri).Response
}

func TestNonceCacheHitAndBadAuth(t *testing.T) {
	c := NewNonceCache(4, 0, 0)
	ha1 := sip.DigestHA1("alice", "pbx", "secret")
	c.Issue("n1", "alice", ha1, 0)

	good := answer("alice", "pbx", "secret", "n1", "sip:pbx")
	if v := c.Verify("n1", "alice", sip.REGISTER, "sip:pbx", good, time.Second); v != NonceHit {
		t.Fatalf("valid response: verdict %v, want NonceHit", v)
	}
	bad := answer("alice", "pbx", "wrong-password", "n1", "sip:pbx")
	if v := c.Verify("n1", "alice", sip.REGISTER, "sip:pbx", bad, time.Second); v != NonceBadAuth {
		t.Fatalf("wrong password: verdict %v, want NonceBadAuth", v)
	}
	st := c.Stats()
	if st.Hits != 1 || st.BadAuth != 1 || st.Issued != 1 {
		t.Fatalf("stats = %+v, want 1 hit / 1 badauth / 1 issued", st)
	}
}

// TestNonceCacheStaleVerdicts pins the three stale paths — unknown
// nonce, aged-out nonce, and a nonce issued to a different user — all
// of which must re-challenge rather than refuse.
func TestNonceCacheStaleVerdicts(t *testing.T) {
	c := NewNonceCache(4, time.Minute, 0)
	ha1 := sip.DigestHA1("alice", "pbx", "secret")
	good := answer("alice", "pbx", "secret", "n1", "sip:pbx")

	if v := c.Verify("n1", "alice", sip.REGISTER, "sip:pbx", good, 0); v != NonceStale {
		t.Fatalf("unknown nonce: verdict %v, want NonceStale", v)
	}

	c.Issue("n1", "alice", ha1, 0)
	if v := c.Verify("n1", "alice", sip.REGISTER, "sip:pbx", good, time.Minute+time.Second); v != NonceStale {
		t.Fatalf("aged-out nonce: verdict %v, want NonceStale", v)
	}
	// The aged entry is deleted on the way out.
	if got := c.Stats().Size; got != 0 {
		t.Fatalf("aged entry not deleted: size %d", got)
	}

	c.Issue("n2", "alice", ha1, 0)
	if v := c.Verify("n2", "mallory", sip.REGISTER, "sip:pbx", good, time.Second); v != NonceStale {
		t.Fatalf("user mismatch: verdict %v, want NonceStale (nonces are not transferable)", v)
	}

	st := c.Stats()
	if st.Stale != 3 || st.Misses != 1 || st.Hits != 0 || st.BadAuth != 0 {
		t.Fatalf("stats = %+v, want 3 stale / 1 miss / 0 hits / 0 badauth", st)
	}
	if st.HitRate() != 0 {
		t.Fatalf("hit rate = %v, want 0", st.HitRate())
	}
}

// TestNonceCacheEviction fills one shard past its bound and checks
// FIFO order: the oldest nonce goes first, the population never
// exceeds the cap, and evicted nonces verify as stale.
func TestNonceCacheEviction(t *testing.T) {
	c := NewNonceCache(1, 0, 8)
	for i := 0; i < 20; i++ {
		c.Issue(fmt.Sprintf("n%d", i), "alice", "ha1", time.Duration(i))
	}
	st := c.Stats()
	if st.Size != 8 {
		t.Fatalf("size %d after overfill, want cap 8", st.Size)
	}
	if st.Evicted != 12 {
		t.Fatalf("evicted %d, want 12", st.Evicted)
	}
	if v := c.Verify("n0", "alice", sip.REGISTER, "sip:pbx", "x", 0); v != NonceStale {
		t.Fatalf("evicted nonce: verdict %v, want NonceStale", v)
	}
	// The newest survive.
	ha1 := sip.DigestHA1("alice", "pbx", "secret")
	c2 := NewNonceCache(1, 0, 2)
	c2.Issue("a", "alice", ha1, 0)
	c2.Issue("b", "alice", ha1, 0)
	c2.Issue("c", "alice", ha1, 0) // evicts "a"
	good := answer("alice", "pbx", "secret", "c", "sip:pbx")
	if v := c2.Verify("c", "alice", sip.REGISTER, "sip:pbx", good, 0); v != NonceHit {
		t.Fatalf("newest nonce after eviction: verdict %v, want NonceHit", v)
	}
}

// TestNonceCacheReissueAndCompact re-issues the same nonce key (no
// duplicate FIFO slot) and drives enough eviction traffic through one
// shard to trigger FIFO compaction.
func TestNonceCacheReissueAndCompact(t *testing.T) {
	c := NewNonceCache(1, 0, 64)
	for i := 0; i < 1000; i++ {
		c.Issue(fmt.Sprintf("n%d", i%100), "alice", "ha1", time.Duration(i))
	}
	st := c.Stats()
	if st.Size > 64 {
		t.Fatalf("size %d exceeds per-shard cap 64", st.Size)
	}
	if st.Issued != 1000 {
		t.Fatalf("issued %d, want 1000", st.Issued)
	}
	s := c.shards[0]
	s.mu.Lock()
	order, head := len(s.order), s.head
	s.mu.Unlock()
	if order-head > 2*64+32 {
		t.Fatalf("FIFO not compacted: len(order)=%d head=%d", order, head)
	}
}

func TestNonceCacheShardCountValidation(t *testing.T) {
	for _, n := range []int{-1, 0, 3, 48} {
		n := n
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewNonceCache(%d,0,0) did not panic", n)
				}
			}()
			NewNonceCache(n, 0, 0)
		}()
	}
	// Tiny capacity with many shards still leaves one slot per shard.
	c := NewNonceCache(16, 0, 4)
	c.Issue("n", "u", "h", 0)
	if c.Stats().Size != 1 {
		t.Fatal("per-shard floor of one entry not honored")
	}
}

func TestNonceHitRate(t *testing.T) {
	st := NonceStats{Hits: 3, Stale: 1, BadAuth: 0}
	if got := st.HitRate(); got != 0.75 {
		t.Fatalf("HitRate = %v, want 0.75", got)
	}
	if (NonceStats{}).HitRate() != 0 {
		t.Fatal("empty stats must report rate 0")
	}
}
