// Package directory is the user store behind the PBX — the stand-in
// for the LDAP server the paper's deployment uses "for user
// authentication and call registration" (Sec. II-A). It maps SIP
// usernames to digest credentials and assigned extensions, and records
// contact bindings created by REGISTER.
//
// The store is sharded for the million-endpoint registrar: a
// power-of-two number of shards, each with its own lock, user map,
// binding map and expiry heap, so concurrent REGISTER bursts from the
// real-UDP listener shards do not serialize on one mutex. Binding
// expiry is event-driven: each shard keeps a min-heap of deadlines and
// arms one timer on the attached clock (the simulation timing wheel in
// sim runs, the wall clock in pbxd) for the earliest one, instead of
// scanning N bindings.
package directory

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/transport"
)

// User is one provisioned account.
type User struct {
	// Username is the SIP user part (also the dialable extension).
	Username string
	// Password is the digest secret.
	Password string
	// DisplayName is informational.
	DisplayName string
}

// Binding is a registered contact: where to reach a user right now.
type Binding struct {
	Contact   string // transport address "host:port"
	ExpiresAt time.Duration
}

// DefaultShards is the shard count used by New. Sixteen keeps the
// single-host sim cheap while giving the real-UDP PBX (one goroutine
// per REUSEPORT listener shard) lock-free parallelism.
const DefaultShards = 16

// expiryEntry is one scheduled binding removal. Entries are never
// deleted eagerly on refresh: a refreshed binding leaves its old entry
// in the heap, and the pop path re-checks the live deadline, so a
// refresh can never open a gap.
type expiryEntry struct {
	at      time.Duration
	user    string
	contact string
}

// shard is one lock domain of the directory.
type shard struct {
	mu       sync.Mutex
	users    map[string]User
	bindings map[string][]Binding
	heap     []expiryEntry
	// armedAt is the deadline the shard timer is currently set for,
	// or -1 when no timer is pending.
	armedAt time.Duration
	timer   transport.Timer
}

// Directory is an in-memory user and registration store. It is safe
// for concurrent use (the real-UDP PBX serves from multiple
// goroutines).
type Directory struct {
	shards []*shard
	mask   uint32
	// live counts stored bindings across all shards; kept with
	// atomics so telemetry gauges never take shard locks.
	live atomic.Int64
	// clock drives event-driven expiry once StartExpiry attaches it.
	// nil means bindings expire lazily on read, as before. Held in an
	// atomic so the register hot path never takes a directory-wide
	// lock.
	clock atomic.Pointer[clockBox]
}

// clockBox wraps the clock interface for atomic.Pointer.
type clockBox struct{ c transport.Clock }

func (d *Directory) expiryClock() transport.Clock {
	if b := d.clock.Load(); b != nil {
		return b.c
	}
	return nil
}

// New returns an empty directory with DefaultShards shards.
func New() *Directory { return NewSharded(DefaultShards) }

// NewSharded returns an empty directory with the given power-of-two
// shard count.
func NewSharded(n int) *Directory {
	if n <= 0 || n&(n-1) != 0 {
		panic(fmt.Sprintf("directory: shard count %d is not a power of two", n))
	}
	d := &Directory{shards: make([]*shard, n), mask: uint32(n - 1)}
	for i := range d.shards {
		d.shards[i] = &shard{
			users:    make(map[string]User),
			bindings: make(map[string][]Binding),
			armedAt:  -1,
		}
	}
	return d
}

// Errors.
var (
	ErrNoSuchUser    = errors.New("directory: no such user")
	ErrDuplicateUser = errors.New("directory: user already exists")
)

// fnv1a32 is the shard hash. FNV-1a keeps equal usernames on equal
// shards across restarts with zero allocation.
func fnv1a32(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}

func (d *Directory) shardFor(username string) *shard {
	return d.shards[fnv1a32(username)&d.mask]
}

// Shards returns the shard count.
func (d *Directory) Shards() int { return len(d.shards) }

// AddUser provisions an account. Adding an existing username fails.
func (d *Directory) AddUser(u User) error {
	if u.Username == "" {
		return errors.New("directory: empty username")
	}
	s := d.shardFor(u.Username)
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.users[u.Username]; ok {
		return fmt.Errorf("%w: %s", ErrDuplicateUser, u.Username)
	}
	s.users[u.Username] = u
	return nil
}

// Provision bulk-creates users named <prefix><start>…<prefix><start+n-1>
// with per-user passwords, mirroring how the campus assigns accounts
// from institutional IDs. It returns the created usernames.
func (d *Directory) Provision(prefix string, start, n int) []string {
	names := make([]string, 0, n)
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("%s%d", prefix, start+i)
		if err := d.AddUser(User{Username: name, Password: "pw-" + name}); err == nil {
			names = append(names, name)
		}
	}
	return names
}

// Lookup returns the account for username.
func (d *Directory) Lookup(username string) (User, error) {
	s := d.shardFor(username)
	s.mu.Lock()
	u, ok := s.users[username]
	s.mu.Unlock()
	if !ok {
		return User{}, fmt.Errorf("%w: %s", ErrNoSuchUser, username)
	}
	return u, nil
}

// Authenticate verifies a password.
func (d *Directory) Authenticate(username, password string) bool {
	u, err := d.Lookup(username)
	return err == nil && u.Password == password
}

// Register stores a contact binding for username with the given
// lifetime measured on the caller's clock. A user may hold several
// contacts; registering an existing contact refreshes its deadline.
// A non-positive ttl removes that one contact (RFC 3261 "Expires: 0").
func (d *Directory) Register(username, contact string, now, ttl time.Duration) error {
	s := d.shardFor(username)
	s.mu.Lock()
	if _, ok := s.users[username]; !ok {
		s.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrNoSuchUser, username)
	}
	if ttl <= 0 {
		d.removeContactLocked(s, username, contact)
		s.mu.Unlock()
		return nil
	}
	bs := s.bindings[username]
	refreshed := false
	for i := range bs {
		if bs[i].Contact == contact {
			// Move the refreshed binding to the end: Contact()
			// resolves to the most recently registered contact.
			b := bs[i]
			b.ExpiresAt = now + ttl
			bs = append(append(bs[:i], bs[i+1:]...), b)
			refreshed = true
			break
		}
	}
	if !refreshed {
		bs = append(bs, Binding{Contact: contact, ExpiresAt: now + ttl})
		d.live.Add(1)
	}
	s.bindings[username] = bs
	d.scheduleExpiryLocked(s, expiryEntry{at: now + ttl, user: username, contact: contact})
	s.mu.Unlock()
	return nil
}

// removeContactLocked drops one contact of username, or every contact
// when contact is empty.
func (d *Directory) removeContactLocked(s *shard, username, contact string) {
	bs, ok := s.bindings[username]
	if !ok {
		return
	}
	if contact == "" {
		d.live.Add(int64(-len(bs)))
		delete(s.bindings, username)
		return
	}
	for i := range bs {
		if bs[i].Contact == contact {
			bs = append(bs[:i], bs[i+1:]...)
			d.live.Add(-1)
			break
		}
	}
	if len(bs) == 0 {
		delete(s.bindings, username)
	} else {
		s.bindings[username] = bs
	}
}

// Contact resolves a username to its most recently registered,
// unexpired contact.
func (d *Directory) Contact(username string, now time.Duration) (string, bool) {
	s := d.shardFor(username)
	s.mu.Lock()
	defer s.mu.Unlock()
	bs := s.bindings[username]
	for i := len(bs) - 1; i >= 0; i-- {
		if bs[i].ExpiresAt > now {
			return bs[i].Contact, true
		}
	}
	return "", false
}

// Contacts returns every unexpired contact of username, oldest
// registration first.
func (d *Directory) Contacts(username string, now time.Duration) []string {
	s := d.shardFor(username)
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []string
	for _, b := range s.bindings[username] {
		if b.ExpiresAt > now {
			out = append(out, b.Contact)
		}
	}
	return out
}

// Unregister removes every binding of username.
func (d *Directory) Unregister(username string) {
	s := d.shardFor(username)
	s.mu.Lock()
	d.removeContactLocked(s, username, "")
	s.mu.Unlock()
}

// UnregisterAll clears all of a user's contacts — the "Contact: *"
// with "Expires: 0" wildcard from RFC 3261 §10.2.2.
func (d *Directory) UnregisterAll(username string) error {
	s := d.shardFor(username)
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.users[username]; !ok {
		return fmt.Errorf("%w: %s", ErrNoSuchUser, username)
	}
	d.removeContactLocked(s, username, "")
	return nil
}

// Users returns the number of provisioned accounts.
func (d *Directory) Users() int {
	n := 0
	for _, s := range d.shards {
		s.mu.Lock()
		n += len(s.users)
		s.mu.Unlock()
	}
	return n
}

// Registered returns the number of users with at least one live
// binding at time now.
func (d *Directory) Registered(now time.Duration) int {
	n := 0
	for _, s := range d.shards {
		s.mu.Lock()
		for _, bs := range s.bindings {
			for _, b := range bs {
				if b.ExpiresAt > now {
					n++
					break
				}
			}
		}
		s.mu.Unlock()
	}
	return n
}

// LiveBindings returns the number of stored contact bindings. With the
// expiry wheel running (StartExpiry) this tracks live bindings exactly;
// without it, bindings past their deadline still count until removed.
func (d *Directory) LiveBindings() int64 { return d.live.Load() }

// StartExpiry attaches a clock and switches binding expiry from lazy
// read-side checks to event-driven removal: each shard arms one timer
// for its earliest deadline. In the sim this is the scheduler's timing
// wheel; in pbxd it is the wall clock.
func (d *Directory) StartExpiry(clock transport.Clock) {
	d.clock.Store(&clockBox{c: clock})
	now := clock.Now()
	for _, s := range d.shards {
		s.mu.Lock()
		// Catch up deadlines registered before the clock attached.
		for u, bs := range s.bindings {
			for _, b := range bs {
				heapPush(&s.heap, expiryEntry{at: b.ExpiresAt, user: u, contact: b.Contact})
			}
		}
		d.armLocked(s, now)
		s.mu.Unlock()
	}
}

// scheduleExpiryLocked records a deadline and (if a clock is attached)
// arms or advances the shard timer. Called with s.mu held.
func (d *Directory) scheduleExpiryLocked(s *shard, e expiryEntry) {
	clock := d.expiryClock()
	if clock == nil {
		return
	}
	heapPush(&s.heap, e)
	d.armLocked(s, clock.Now())
}

// armLocked makes sure the shard timer fires at the heap head. Called
// with s.mu held.
func (d *Directory) armLocked(s *shard, now time.Duration) {
	clock := d.expiryClock()
	if clock == nil || len(s.heap) == 0 {
		return
	}
	head := s.heap[0].at
	if s.armedAt >= 0 && s.armedAt <= head {
		return // pending timer already fires early enough
	}
	if s.timer != nil {
		s.timer.Stop()
	}
	s.armedAt = head
	delay := head - now
	if delay < 0 {
		delay = 0
	}
	s.timer = clock.AfterFunc(delay, func() { d.expire(s, clock) })
}

// expire pops every due deadline on one shard and removes bindings
// whose live deadline has actually passed. Entries superseded by a
// refresh are skipped: the refreshed binding's later deadline has its
// own heap entry.
func (d *Directory) expire(s *shard, clock transport.Clock) {
	now := clock.Now()
	s.mu.Lock()
	for len(s.heap) > 0 && s.heap[0].at <= now {
		e := heapPop(&s.heap)
		bs := s.bindings[e.user]
		for i := range bs {
			if bs[i].Contact == e.contact && bs[i].ExpiresAt <= now {
				d.removeContactLocked(s, e.user, e.contact)
				break
			}
		}
	}
	s.armedAt = -1
	s.timer = nil
	d.armLocked(s, now)
	s.mu.Unlock()
}

// heapPush / heapPop: a plain min-heap on at. Inlined rather than
// container/heap to avoid the interface boxing on the registrar hot
// path.

func heapPush(h *[]expiryEntry, e expiryEntry) {
	*h = append(*h, e)
	hs := *h
	i := len(hs) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if hs[parent].at <= hs[i].at {
			break
		}
		hs[parent], hs[i] = hs[i], hs[parent]
		i = parent
	}
}

func heapPop(h *[]expiryEntry) expiryEntry {
	hs := *h
	top := hs[0]
	n := len(hs) - 1
	hs[0] = hs[n]
	hs = hs[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && hs[l].at < hs[small].at {
			small = l
		}
		if r < n && hs[r].at < hs[small].at {
			small = r
		}
		if small == i {
			break
		}
		hs[i], hs[small] = hs[small], hs[i]
		i = small
	}
	*h = hs
	return top
}
