// Package directory is the user store behind the PBX — the stand-in
// for the LDAP server the paper's deployment uses "for user
// authentication and call registration" (Sec. II-A). It maps SIP
// usernames to digest credentials and assigned extensions, and records
// contact bindings created by REGISTER.
package directory

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// User is one provisioned account.
type User struct {
	// Username is the SIP user part (also the dialable extension).
	Username string
	// Password is the digest secret.
	Password string
	// DisplayName is informational.
	DisplayName string
}

// Binding is a registered contact: where to reach a user right now.
type Binding struct {
	Contact   string // transport address "host:port"
	ExpiresAt time.Duration
}

// Directory is an in-memory user and registration store. It is safe
// for concurrent use (the real-UDP PBX serves from multiple
// goroutines).
type Directory struct {
	mu       sync.RWMutex
	users    map[string]User
	bindings map[string]Binding
}

// New returns an empty directory.
func New() *Directory {
	return &Directory{
		users:    make(map[string]User),
		bindings: make(map[string]Binding),
	}
}

// Errors.
var (
	ErrNoSuchUser    = errors.New("directory: no such user")
	ErrDuplicateUser = errors.New("directory: user already exists")
)

// AddUser provisions an account. Adding an existing username fails.
func (d *Directory) AddUser(u User) error {
	if u.Username == "" {
		return errors.New("directory: empty username")
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, ok := d.users[u.Username]; ok {
		return fmt.Errorf("%w: %s", ErrDuplicateUser, u.Username)
	}
	d.users[u.Username] = u
	return nil
}

// Provision bulk-creates users named <prefix><start>…<prefix><start+n-1>
// with per-user passwords, mirroring how the campus assigns accounts
// from institutional IDs. It returns the created usernames.
func (d *Directory) Provision(prefix string, start, n int) []string {
	names := make([]string, 0, n)
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("%s%d", prefix, start+i)
		if err := d.AddUser(User{Username: name, Password: "pw-" + name}); err == nil {
			names = append(names, name)
		}
	}
	return names
}

// Lookup returns the account for username.
func (d *Directory) Lookup(username string) (User, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	u, ok := d.users[username]
	if !ok {
		return User{}, fmt.Errorf("%w: %s", ErrNoSuchUser, username)
	}
	return u, nil
}

// Authenticate verifies a password.
func (d *Directory) Authenticate(username, password string) bool {
	u, err := d.Lookup(username)
	return err == nil && u.Password == password
}

// Register stores a contact binding for username with the given
// lifetime measured on the caller's clock.
func (d *Directory) Register(username, contact string, now, ttl time.Duration) error {
	if _, err := d.Lookup(username); err != nil {
		return err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if ttl <= 0 {
		delete(d.bindings, username)
		return nil
	}
	d.bindings[username] = Binding{Contact: contact, ExpiresAt: now + ttl}
	return nil
}

// Contact resolves a username to its registered, unexpired contact.
func (d *Directory) Contact(username string, now time.Duration) (string, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	b, ok := d.bindings[username]
	if !ok || b.ExpiresAt <= now {
		return "", false
	}
	return b.Contact, true
}

// Unregister removes a binding.
func (d *Directory) Unregister(username string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	delete(d.bindings, username)
}

// Users returns the number of provisioned accounts.
func (d *Directory) Users() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.users)
}

// Registered returns the number of live bindings at time now.
func (d *Directory) Registered(now time.Duration) int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	n := 0
	for _, b := range d.bindings {
		if b.ExpiresAt > now {
			n++
		}
	}
	return n
}
