package directory

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/sip"
)

// BenchmarkRegistrarRegister measures the register/refresh hot path
// across shard counts: after the first lap every operation is a
// refresh (same user+contact), which is the steady-state storm the
// million-endpoint registrar sustains. The parallel variant is where
// shard count matters — per-shard locks turn the REUSEPORT listener
// fan-in into independent lock domains.
func BenchmarkRegistrarRegister(b *testing.B) {
	const users = 4096
	for _, shards := range []int{1, 4, 16, 64} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			d := NewSharded(shards)
			names := make([]string, users)
			for i := range names {
				names[i] = fmt.Sprintf("u%d", i)
				if err := d.AddUser(User{Username: names[i], Password: "pw"}); err != nil {
					b.Fatal(err)
				}
			}
			contact := "10.0.0.1:5060"
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				i := 0
				for pb.Next() {
					u := names[i&(users-1)]
					if err := d.Register(u, contact, time.Duration(i), time.Hour); err != nil {
						b.Fatal(err)
					}
					i++
				}
			})
		})
	}
}

// BenchmarkNonceCacheHit is the auth fast path: a REGISTER whose
// preemptive Authorization answers a cached nonce. The verdict is a
// pure MD5 check against the stored HA1 — it must stay at zero
// allocations per op, or a refresh storm turns into GC pressure.
func BenchmarkNonceCacheHit(b *testing.B) {
	c := NewNonceCache(16, 0, 0)
	ha1 := sip.DigestHA1("alice", "pbx", "secret")
	const uri = "sip:pbx:5060"
	nonces := make([]string, 64)
	responses := make([]string, 64)
	for i := range nonces {
		nonces[i] = fmt.Sprintf("n%d-%d", i, i*7919)
		c.Issue(nonces[i], "alice", ha1, 0)
		ch := sip.DigestChallenge{Realm: "pbx", Nonce: nonces[i]}
		responses[i] = ch.Answer("alice", "secret", sip.REGISTER, uri).Response
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := i & 63
		if v := c.Verify(nonces[k], "alice", sip.REGISTER, uri, responses[k], 0); v != NonceHit {
			b.Fatalf("verdict %v, want hit", v)
		}
	}
}
