package directory

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/stats"
	"repro/internal/transport"
)

// fakeClock is a hand-cranked virtual clock: Advance moves time and
// fires due timers in deadline order, so expiry behavior can be probed
// at exact instants without a full simulation scheduler.
type fakeClock struct {
	now    time.Duration
	timers []*fakeTimer
}

type fakeTimer struct {
	at      time.Duration
	fn      func()
	stopped bool
	fired   bool
}

func (t *fakeTimer) Stop() bool {
	was := !t.stopped && !t.fired
	t.stopped = true
	return was
}

func (c *fakeClock) Now() time.Duration { return c.now }

func (c *fakeClock) AfterFunc(d time.Duration, fn func()) transport.Timer {
	t := &fakeTimer{at: c.now + d, fn: fn}
	c.timers = append(c.timers, t)
	return t
}

// Advance moves the clock to target, firing every due timer in
// deadline order (timers armed by callbacks included).
func (c *fakeClock) Advance(target time.Duration) {
	for {
		var next *fakeTimer
		for _, t := range c.timers {
			if t.stopped || t.fired || t.at > target {
				continue
			}
			if next == nil || t.at < next.at {
				next = t
			}
		}
		if next == nil {
			break
		}
		c.now = next.at
		next.fired = true
		next.fn()
	}
	c.now = target
}

// regOp is one step of a generated registration history.
type regOp struct {
	kind    int // 0 register, 1 refresh-or-register, 2 remove one, 3 wildcard
	user    string
	contact string
	at      time.Duration
	ttl     time.Duration
}

// genOps produces a deterministic pseudo-random operation history over
// a fixed user population, with interleaved registers, refreshes,
// single-contact removals and wildcard clears at increasing times.
func genOps(seed uint64, users, steps int) []regOp {
	rng := stats.NewRNG(seed)
	ops := make([]regOp, 0, steps)
	at := time.Duration(0)
	for i := 0; i < steps; i++ {
		at += time.Duration(rng.Float64() * float64(200*time.Millisecond))
		ops = append(ops, regOp{
			kind:    int(rng.Uint64() % 4),
			user:    fmt.Sprintf("u%d", rng.Uint64()%uint64(users)),
			contact: fmt.Sprintf("10.0.0.%d:5060", rng.Uint64()%8),
			at:      at,
			ttl:     time.Duration(1+rng.Uint64()%60) * time.Second,
		})
	}
	return ops
}

// visibleState flattens everything a SIP-layer caller can observe:
// per-user contact sets (ordered), the registered-user count, and the
// live-binding gauge.
func visibleState(d *Directory, users int, now time.Duration) string {
	var b []string
	for i := 0; i < users; i++ {
		u := fmt.Sprintf("u%d", i)
		cs := d.Contacts(u, now)
		best, ok := d.Contact(u, now)
		b = append(b, fmt.Sprintf("%s: contacts=%v best=%q live=%v", u, cs, best, ok))
	}
	b = append(b, fmt.Sprintf("registered=%d liveBindings=%d", d.Registered(now), d.LiveBindings()))
	return fmt.Sprint(b)
}

// TestShardPlacementInvariance is the battery's core property: the
// same operation history applied to stores with 1, 4 and 64 shards —
// with the expiry wheel running on a virtual clock — must leave the
// same visible state at every probe instant. Shard layout is a lock
// domain choice, never semantics.
func TestShardPlacementInvariance(t *testing.T) {
	const users, steps = 24, 400
	for _, seed := range []uint64{1, 42, 160} {
		ops := genOps(seed, users, steps)
		var baseline []string
		for _, shards := range []int{1, 4, 64} {
			clock := &fakeClock{}
			d := NewSharded(shards)
			for i := 0; i < users; i++ {
				if err := d.AddUser(User{Username: fmt.Sprintf("u%d", i), Password: "pw"}); err != nil {
					t.Fatal(err)
				}
			}
			d.StartExpiry(clock)
			var states []string
			for _, op := range ops {
				clock.Advance(op.at)
				switch op.kind {
				case 0, 1:
					if err := d.Register(op.user, op.contact, op.at, op.ttl); err != nil {
						t.Fatalf("register: %v", err)
					}
				case 2:
					if err := d.Register(op.user, op.contact, op.at, 0); err != nil {
						t.Fatalf("remove: %v", err)
					}
				case 3:
					if err := d.UnregisterAll(op.user); err != nil {
						t.Fatalf("wildcard: %v", err)
					}
				}
				states = append(states, visibleState(d, users, op.at))
			}
			// Probe through the quiet tail too: expiry ordering across
			// shards must agree as the remaining TTLs run out.
			last := ops[len(ops)-1].at
			for off := time.Second; off <= 70*time.Second; off += time.Second {
				clock.Advance(last + off)
				states = append(states, visibleState(d, users, last+off))
			}
			if baseline == nil {
				baseline = states
				continue
			}
			for i := range states {
				if states[i] != baseline[i] {
					t.Fatalf("seed=%d shards=%d: state diverged from shards=1 at step %d:\n got:  %s\n want: %s",
						seed, shards, i, states[i], baseline[i])
				}
			}
		}
	}
}

// TestExactTTLExpiryOnVirtualClock pins the expiry instant: a binding
// with a 30 s TTL is visible until—but not at—t0+30 s, and the timer
// wheel removes it from the store at exactly that deadline, not on a
// later scan.
func TestExactTTLExpiryOnVirtualClock(t *testing.T) {
	clock := &fakeClock{}
	d := NewSharded(4)
	if err := d.AddUser(User{Username: "alice", Password: "pw"}); err != nil {
		t.Fatal(err)
	}
	d.StartExpiry(clock)
	if err := d.Register("alice", "10.0.0.1:5060", clock.Now(), 30*time.Second); err != nil {
		t.Fatal(err)
	}

	clock.Advance(30*time.Second - time.Nanosecond)
	if _, ok := d.Contact("alice", clock.Now()); !ok {
		t.Fatal("binding invisible one nanosecond before its deadline")
	}
	if d.LiveBindings() != 1 {
		t.Fatalf("LiveBindings = %d before the deadline, want 1", d.LiveBindings())
	}

	clock.Advance(30 * time.Second)
	if _, ok := d.Contact("alice", clock.Now()); ok {
		t.Fatal("binding visible at its exact deadline")
	}
	if d.LiveBindings() != 0 {
		t.Fatalf("LiveBindings = %d at the deadline, want 0 (event-driven removal)", d.LiveBindings())
	}
	if d.Registered(clock.Now()) != 0 {
		t.Fatal("user still counted as registered at the deadline")
	}
}

// TestRefreshNeverGaps is the no-gap property: a refresh before the
// old deadline extends the binding seamlessly — the superseded heap
// entry firing at the old deadline must not evict the refreshed
// binding, at that instant or any other until the new deadline.
func TestRefreshNeverGaps(t *testing.T) {
	clock := &fakeClock{}
	d := NewSharded(4)
	if err := d.AddUser(User{Username: "bob", Password: "pw"}); err != nil {
		t.Fatal(err)
	}
	d.StartExpiry(clock)
	if err := d.Register("bob", "10.0.0.2:5060", 0, 30*time.Second); err != nil {
		t.Fatal(err)
	}
	clock.Advance(25 * time.Second)
	if err := d.Register("bob", "10.0.0.2:5060", clock.Now(), 30*time.Second); err != nil {
		t.Fatal(err)
	}
	// Probe every 100 ms across the old deadline and up to the new one.
	for at := 25 * time.Second; at < 55*time.Second; at += 100 * time.Millisecond {
		clock.Advance(at)
		if _, ok := d.Contact("bob", clock.Now()); !ok {
			t.Fatalf("refresh gap: binding invisible at %s (refreshed deadline 55s)", at)
		}
		if d.LiveBindings() != 1 {
			t.Fatalf("LiveBindings = %d at %s, want 1", d.LiveBindings(), at)
		}
	}
	clock.Advance(55 * time.Second)
	if _, ok := d.Contact("bob", clock.Now()); ok {
		t.Fatal("binding visible at its refreshed deadline")
	}
	if d.LiveBindings() != 0 {
		t.Fatalf("LiveBindings = %d after the refreshed deadline, want 0", d.LiveBindings())
	}
}

// TestWildcardClearsAllContacts pins RFC 3261 §10.2.2 semantics: the
// wildcard clears every contact of the user — and only that user —
// while single-contact deregistration (ttl 0) removes exactly one.
func TestWildcardClearsAllContacts(t *testing.T) {
	d := NewSharded(4)
	for _, u := range []string{"carol", "dave"} {
		if err := d.AddUser(User{Username: u, Password: "pw"}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		contact := fmt.Sprintf("10.0.1.%d:5060", i)
		if err := d.Register("carol", contact, 0, time.Minute); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Register("dave", "10.0.2.1:5060", 0, time.Minute); err != nil {
		t.Fatal(err)
	}
	if got := len(d.Contacts("carol", 0)); got != 3 {
		t.Fatalf("carol has %d contacts, want 3", got)
	}

	// Single-contact removal first.
	if err := d.Register("carol", "10.0.1.1:5060", 0, 0); err != nil {
		t.Fatal(err)
	}
	if got := d.Contacts("carol", 0); len(got) != 2 {
		t.Fatalf("after single removal carol has %v, want 2 contacts", got)
	}

	if err := d.UnregisterAll("carol"); err != nil {
		t.Fatal(err)
	}
	if got := d.Contacts("carol", 0); len(got) != 0 {
		t.Fatalf("wildcard left contacts behind: %v", got)
	}
	if _, ok := d.Contact("dave", 0); !ok {
		t.Fatal("wildcard for carol cleared dave's binding")
	}
	if d.LiveBindings() != 1 {
		t.Fatalf("LiveBindings = %d, want 1 (dave)", d.LiveBindings())
	}
	if err := d.UnregisterAll("nobody"); err == nil {
		t.Fatal("wildcard for unknown user did not fail")
	}
}

// TestNewShardedRejectsBadCounts pins the power-of-two contract.
func TestNewShardedRejectsBadCounts(t *testing.T) {
	for _, n := range []int{-1, 0, 3, 6, 12, 100} {
		n := n
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewSharded(%d) did not panic", n)
				}
			}()
			NewSharded(n)
		}()
	}
	for _, n := range []int{1, 2, 16, 64} {
		if got := NewSharded(n).Shards(); got != n {
			t.Errorf("Shards() = %d, want %d", got, n)
		}
	}
}

// TestRegistrarStress is the `make verify` register-smoke: every
// shard-visible operation hammered from GOMAXPROCS-scaled writers
// under -race, with the expiry wheel running on the real clock. The
// assertions are conservation properties: the live-binding gauge must
// equal the sum of per-user contact counts once the dust settles.
func TestRegistrarStress(t *testing.T) {
	const users = 64
	const workers = 8
	const opsPerWorker = 2000

	d := NewSharded(16)
	clock := transport.NewRealClock()
	for i := 0; i < users; i++ {
		if err := d.AddUser(User{Username: fmt.Sprintf("u%d", i), Password: "pw"}); err != nil {
			t.Fatal(err)
		}
	}
	d.StartExpiry(clock)

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := stats.NewRNG(uint64(w)*7919 + 1)
			for i := 0; i < opsPerWorker; i++ {
				user := fmt.Sprintf("u%d", rng.Uint64()%users)
				contact := fmt.Sprintf("10.1.%d.%d:5060", w, rng.Uint64()%4)
				now := clock.Now()
				switch rng.Uint64() % 8 {
				case 0:
					d.Unregister(user)
				case 1:
					_ = d.Register(user, contact, now, 0)
				case 2:
					_, _ = d.Contact(user, now)
				case 3:
					_ = d.Contacts(user, now)
				case 4:
					d.Registered(now)
				default:
					// Mostly registers/refreshes, some with TTLs short
					// enough to expire mid-run on the real clock.
					ttl := time.Duration(1+rng.Uint64()%50) * time.Millisecond * 10
					_ = d.Register(user, contact, now, ttl)
				}
			}
		}()
	}
	wg.Wait()

	// Conservation: the atomic gauge must agree with a raw walk of the
	// shard maps.
	raw := 0
	for _, s := range d.shards {
		s.mu.Lock()
		for _, bs := range s.bindings {
			raw += len(bs)
		}
		s.mu.Unlock()
	}
	if int64(raw) != d.LiveBindings() {
		t.Fatalf("gauge drift: %d stored bindings vs LiveBindings=%d", raw, d.LiveBindings())
	}
}
