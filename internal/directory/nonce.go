package directory

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/sip"
)

// NonceCache remembers the digest nonces the registrar has issued, so
// the auth hot path validates a REGISTER against the server's own
// challenge instead of re-deriving one from whatever nonce the client
// offers (which would accept forged or replayed nonces). Entries carry
// the user's precomputed HA1, making a cache hit a pure hash check
// with no directory lookup and no allocation.
//
// The cache is sharded like the Directory, bounded per shard with
// FIFO eviction, and entries age out of a replay window: a REGISTER
// answering an aged-out nonce gets a fresh stale=true challenge
// rather than a 403, per RFC 2617 3.2.1.
type NonceCache struct {
	shards []*nonceShard
	mask   uint32
	window time.Duration
	cap    int // per shard
}

type nonceEntry struct {
	user     string
	ha1      string
	issuedAt time.Duration
}

type nonceShard struct {
	mu      sync.Mutex
	entries map[string]nonceEntry
	// order is a FIFO of nonce keys for bounded eviction; head indexes
	// the oldest un-evicted key.
	order   []string
	head    int
	scratch []byte

	issued  uint64
	hits    uint64
	misses  uint64
	stale   uint64
	badAuth uint64
	evicted uint64
}

// Nonce verdicts.
type NonceVerdict int

const (
	// NonceHit: nonce known and in-window, response verified.
	NonceHit NonceVerdict = iota
	// NonceBadAuth: nonce known and in-window, response wrong — the
	// credentials are bad and the request should be refused.
	NonceBadAuth
	// NonceStale: nonce unknown or aged out — re-challenge with
	// stale=true so the client retries without user interaction.
	NonceStale
)

// DefaultNonceWindow is how long an issued nonce stays answerable.
const DefaultNonceWindow = 5 * time.Minute

// DefaultNonceCap bounds the total entries across all shards.
const DefaultNonceCap = 65536

// NewNonceCache builds a cache with the given power-of-two shard
// count, replay window and total capacity. Zero window/capacity pick
// the defaults.
func NewNonceCache(shards int, window time.Duration, capacity int) *NonceCache {
	if shards <= 0 || shards&(shards-1) != 0 {
		panic(fmt.Sprintf("directory: nonce shard count %d is not a power of two", shards))
	}
	if window <= 0 {
		window = DefaultNonceWindow
	}
	if capacity <= 0 {
		capacity = DefaultNonceCap
	}
	perShard := capacity / shards
	if perShard < 1 {
		perShard = 1
	}
	c := &NonceCache{
		shards: make([]*nonceShard, shards),
		mask:   uint32(shards - 1),
		window: window,
		cap:    perShard,
	}
	for i := range c.shards {
		c.shards[i] = &nonceShard{entries: make(map[string]nonceEntry)}
	}
	return c
}

func (c *NonceCache) shardFor(nonce string) *nonceShard {
	return c.shards[fnv1a32(nonce)&c.mask]
}

// Issue records a freshly minted nonce for user with their
// precomputed HA1, evicting the shard's oldest entry when full.
func (c *NonceCache) Issue(nonce, user, ha1 string, now time.Duration) {
	s := c.shardFor(nonce)
	s.mu.Lock()
	for len(s.entries) >= c.cap {
		c.evictOldestLocked(s)
	}
	if _, ok := s.entries[nonce]; !ok {
		s.order = append(s.order, nonce)
	}
	s.entries[nonce] = nonceEntry{user: user, ha1: ha1, issuedAt: now}
	s.issued++
	c.compactLocked(s)
	s.mu.Unlock()
}

// evictOldestLocked drops the FIFO head (skipping keys already
// removed by expiry).
func (c *NonceCache) evictOldestLocked(s *nonceShard) {
	for s.head < len(s.order) {
		key := s.order[s.head]
		s.head++
		if _, ok := s.entries[key]; ok {
			delete(s.entries, key)
			s.evicted++
			return
		}
	}
	// order exhausted but entries non-empty should not happen; reset.
	s.order = s.order[:0]
	s.head = 0
}

// compactLocked reclaims the consumed FIFO prefix once it dominates
// the slice.
func (c *NonceCache) compactLocked(s *nonceShard) {
	if s.head > len(s.order)/2 && s.head > 32 {
		s.order = append(s.order[:0], s.order[s.head:]...)
		s.head = 0
	}
}

// Verify checks a digest response against the issued nonce. A hit
// must name the same user the nonce was issued to (a nonce is not
// transferable) and verify against the cached HA1; an unknown or
// out-of-window nonce is stale, never an auth failure.
func (c *NonceCache) Verify(nonce, user string, method sip.Method, uri, response string, now time.Duration) NonceVerdict {
	s := c.shardFor(nonce)
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[nonce]
	if !ok {
		s.misses++
		s.stale++
		return NonceStale
	}
	if now-e.issuedAt > c.window {
		delete(s.entries, nonce)
		s.stale++
		return NonceStale
	}
	if e.user != user {
		s.stale++
		return NonceStale
	}
	okResp, buf := sip.VerifyHA1(e.ha1, nonce, method, uri, response, s.scratch)
	s.scratch = buf
	if !okResp {
		s.badAuth++
		return NonceBadAuth
	}
	s.hits++
	return NonceHit
}

// NonceStats is a point-in-time aggregate across shards.
type NonceStats struct {
	Issued  uint64
	Hits    uint64
	Misses  uint64
	Stale   uint64
	BadAuth uint64
	Evicted uint64
	Size    int
}

// HitRate is hits / (hits + stale + badAuth), the fraction of
// REGISTERs with credentials that verified on the first pass.
func (st NonceStats) HitRate() float64 {
	total := st.Hits + st.Stale + st.BadAuth
	if total == 0 {
		return 0
	}
	return float64(st.Hits) / float64(total)
}

// Stats sums the per-shard counters.
func (c *NonceCache) Stats() NonceStats {
	var st NonceStats
	for _, s := range c.shards {
		s.mu.Lock()
		st.Issued += s.issued
		st.Hits += s.hits
		st.Misses += s.misses
		st.Stale += s.stale
		st.BadAuth += s.badAuth
		st.Evicted += s.evicted
		st.Size += len(s.entries)
		s.mu.Unlock()
	}
	return st
}
