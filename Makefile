GO ?= go

# Benchmark harness knobs: repetitions per benchmark and the dated
# snapshot the results land in (see `make bench` / `make bench-check`).
BENCH_COUNT ?= 3
BENCH_DATE  ?= $(shell date +%Y%m%d)
BENCH_JSON  ?= BENCH_$(BENCH_DATE).json

# Coverage floor for the codec negotiation plane and the shard
# scheduler (see `make cover`).
COVER_MIN ?= 85

.PHONY: build test vet race chaos-smoke chaos-crash-smoke shard-smoke udp-smoke register-smoke fuzz-smoke telemetry-smoke qos-smoke degradation-smoke lint-metrics cover verify bench bench-check

# The darwin cross-build keeps the portable (non-linux) data plane
# compiling: batch_other.go must satisfy the same interfaces as the
# recvmmsg/sendmmsg/GSO path behind the linux build tag.
build:
	$(GO) build ./...
	GOOS=darwin $(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One pass of the cheap end-to-end chaos scenario (seeded, virtual
# clock): every subsystem touched in about a second of wall time.
chaos-smoke:
	$(GO) test -run 'TestSmokeScenario' -count=1 ./internal/chaos/

# The server-failure drill under the race detector: crash one of
# three backends at peak, verify probe markdown, failover, restart
# re-admission and crash-consistent CDR recovery.
chaos-crash-smoke:
	$(GO) test -race -run 'TestCrashFailoverScenario' -count=1 ./internal/chaos/

# The sharded engine under the race detector: the cheap chaos scenario
# on a 4-shard group, its invariants (including packet-pool gets==puts)
# checked, and its results diffed bit-for-bit against the
# single-scheduler engine.
shard-smoke:
	$(GO) test -race -run 'TestShardedChaosSmoke' -count=1 ./internal/netsim/difftest/

# The real-socket data plane under the race detector: an in-process
# pbxd+sipload soak — sharded REUSEPORT listener, batched read loops,
# GSO send queues, RTP relay cut-through — ending with the buffer-pool
# gets==puts ownership check on every socket opened.
udp-smoke:
	$(GO) test -race -run 'TestLoopbackSoak' -count=1 ./internal/pbx/

# The sharded registrar under the race detector: concurrent
# register/refresh/expire/lookup workers against the live expiry wheel
# on the real clock, ending with the binding-count conservation check
# (raw shard walk == LiveBindings gauge), plus the avalanche scenario's
# own invariants (drain time, 503 peak, transaction/pool leaks).
register-smoke:
	$(GO) test -race -run 'TestRegistrarStress' -count=1 ./internal/directory/
	$(GO) test -race -run 'TestRegisterAvalancheScenario' -count=1 ./internal/chaos/

# Short coverage-guided fuzz of the SIP parser, the SDP offer/answer
# engine and the registrar's REGISTER handling; regression seeds live
# in internal/{sip,sdp,pbx}/testdata/fuzz/.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz=FuzzSIPParse -fuzztime=10s ./internal/sip/
	$(GO) test -run '^$$' -fuzz=FuzzSDPParse -fuzztime=5s ./internal/sdp/
	$(GO) test -run '^$$' -fuzz=FuzzSDPOfferAnswer -fuzztime=5s ./internal/sdp/
	$(GO) test -run '^$$' -fuzz=FuzzRegisterHandle -fuzztime=5s ./internal/pbx/

# Coverage gate on the codec negotiation plane: the registry and the
# SDP offer/answer engine guard the golden-determinism contract, so
# their statement coverage must not decay below COVER_MIN. The shard
# scheduler (internal/netsim/shard.go) carries the same floor — it is
# the one component where an untested branch can silently break
# determinism, so its statements are measured across both the netsim
# unit tests and the difftest differential suite. The sharded location
# store (internal/directory) carries the floor too: a binding the
# registrar silently drops or leaks is a reachability bug the call
# path never notices.
cover:
	@$(GO) test -coverprofile=.cover.out ./internal/codec/ ./internal/sdp/ > /dev/null
	@total=$$($(GO) tool cover -func=.cover.out | awk '/^total:/ { gsub(/%/,"",$$3); print $$3 }'); \
	rm -f .cover.out; \
	echo "cover: internal/codec + internal/sdp statements $$total% (floor $(COVER_MIN)%)"; \
	awk -v t="$$total" -v m="$(COVER_MIN)" 'BEGIN { exit (t+0 < m+0) ? 1 : 0 }'
	@$(GO) test -coverprofile=.cover-shard.out -coverpkg=./internal/netsim/ \
		./internal/netsim/ ./internal/netsim/difftest/ > /dev/null
	@shard=$$(awk '/internal\/netsim\/shard\.go:/ { stmts[$$1]=$$2; if ($$3 > 0) cov[$$1]=1 } \
		END { for (k in stmts) { t += stmts[k]; if (k in cov) c += stmts[k] } printf "%.1f", 100*c/t }' .cover-shard.out); \
	rm -f .cover-shard.out; \
	echo "cover: internal/netsim/shard.go statements $$shard% (floor $(COVER_MIN)%)"; \
	awk -v t="$$shard" -v m="$(COVER_MIN)" 'BEGIN { exit (t+0 < m+0) ? 1 : 0 }'
	@$(GO) test -coverprofile=.cover-dir.out ./internal/directory/ > /dev/null
	@dir=$$($(GO) tool cover -func=.cover-dir.out | awk '/^total:/ { gsub(/%/,"",$$3); print $$3 }'); \
	rm -f .cover-dir.out; \
	echo "cover: internal/directory statements $$dir% (floor $(COVER_MIN)%)"; \
	awk -v t="$$dir" -v m="$(COVER_MIN)" 'BEGIN { exit (t+0 < m+0) ? 1 : 0 }'

# One instrumented overload run dumped to JSON and validated on
# re-read: proves the metrics registry, tracer and sampler stay wired
# end-to-end (cmd/capacity exits non-zero if a required family is
# missing or the series is empty).
telemetry-smoke:
	$(GO) run ./cmd/capacity -telemetry-out .telemetry-smoke.json
	@rm -f .telemetry-smoke.json

# The measured-QoS plane: per-stream sensor estimators (jitter/loss
# property tests, RTCP RTT pairing, zero-alloc observe) and the pinned
# end-to-end QoS goldens (measured MOS histogram + SLO verdicts).
qos-smoke:
	$(GO) test -run 'TestQoS' -count=1 ./internal/media/
	$(GO) test -run 'TestRTCPInfo' -count=1 ./internal/rtp/
	$(GO) test -run 'TestGoldenQoSSnapshot' -count=1 ./internal/core/

# The graceful-degradation ladder under the race detector: a sustained
# surge must walk the controller up to upstream-throttle, shed load
# client-side via the advertised overload window, relax back down the
# hysteresis band, and never renegotiate an established call.
degradation-smoke:
	$(GO) test -race -run 'TestDegradationSurge' -count=1 ./internal/chaos/

# Telemetry naming rule: every registered family name is a snake_case
# const declared exactly once (see cmd/lintmetrics).
lint-metrics:
	$(GO) run ./cmd/lintmetrics

# The pre-merge gate: build (native + darwin cross), vet, full tests,
# race tests, chaos smoke, crash smoke, sharded-engine smoke, real-UDP
# soak, registrar smoke, fuzz smoke, telemetry smoke, QoS smoke,
# degradation smoke, metric-name lint, coverage floors.
verify: build vet test race chaos-smoke chaos-crash-smoke shard-smoke udp-smoke register-smoke fuzz-smoke telemetry-smoke qos-smoke degradation-smoke lint-metrics cover
	@echo "verify: all gates passed"

# Benchmark snapshot: full-experiment benches (one experiment per
# iteration) plus the per-packet micro-benches, parsed into a dated
# JSON file for benchdiff. Compare two snapshots with `make
# bench-check`; a >10% drop in events/sec or rise in allocs/op fails.
bench:
	@rm -f .bench.out
	$(GO) test -run '^$$' -bench 'BenchmarkExperimentSignalling|BenchmarkExperimentPacketized|BenchmarkTableIFlow' \
		-benchmem -benchtime 1x -count $(BENCH_COUNT) . | tee -a .bench.out
	$(GO) test -run '^$$' -bench 'BenchmarkSchedulerCycle|BenchmarkSchedulerMixedHorizon|BenchmarkNetworkSend$$' \
		-benchtime 10000x -count $(BENCH_COUNT) ./internal/netsim/ | tee -a .bench.out
	$(GO) test -run '^$$' -bench 'BenchmarkRelayForward' \
		-benchtime 10000x -count $(BENCH_COUNT) ./internal/pbx/ | tee -a .bench.out
	$(GO) test -run '^$$' -bench 'BenchmarkUDPTransport' \
		-benchtime 10000x -count $(BENCH_COUNT) ./internal/transport/ | tee -a .bench.out
	$(GO) test -run '^$$' -bench 'BenchmarkSessionFrameExchange' \
		-benchtime 10000x -count $(BENCH_COUNT) ./internal/media/ | tee -a .bench.out
	$(GO) test -run '^$$' -bench 'BenchmarkMessageRoundTrip' \
		-benchtime 10000x -count $(BENCH_COUNT) ./internal/sip/ | tee -a .bench.out
	$(GO) test -run '^$$' -bench 'BenchmarkTelemetry' \
		-benchtime 10000x -count $(BENCH_COUNT) ./internal/telemetry/ | tee -a .bench.out
	$(GO) test -run '^$$' -bench 'BenchmarkRegistrarRegister|BenchmarkNonceCacheHit' \
		-benchmem -benchtime 10000x -count $(BENCH_COUNT) ./internal/directory/ | tee -a .bench.out
	$(GO) run ./cmd/benchdiff -parse -o $(BENCH_JSON) .bench.out
	@rm -f .bench.out
	@echo "bench: wrote $(BENCH_JSON)"

# Compare the two most recent snapshots (or BENCH_OLD/BENCH_NEW when
# given). Exits non-zero on a >10% events/sec or allocs/op regression.
bench-check:
	@files="$(BENCH_OLD) $(BENCH_NEW)"; \
	if [ -z "$(BENCH_OLD)" ]; then \
		files=$$(ls BENCH_*.json 2>/dev/null | sort | tail -2); \
	fi; \
	set -- $$files; \
	if [ $$# -lt 2 ]; then echo "bench-check: need two BENCH_*.json snapshots, have: $$files"; exit 0; fi; \
	$(GO) run ./cmd/benchdiff $$1 $$2
