GO ?= go

.PHONY: build test vet race chaos-smoke fuzz-smoke verify

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One pass of the cheap end-to-end chaos scenario (seeded, virtual
# clock): every subsystem touched in about a second of wall time.
chaos-smoke:
	$(GO) test -run 'TestSmokeScenario' -count=1 ./internal/chaos/

# Short coverage-guided fuzz of the SIP parser; regression seeds live
# in internal/sip/testdata/fuzz/.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz=FuzzSIPParse -fuzztime=10s ./internal/sip/

# The pre-merge gate: build, vet, full tests, race tests, chaos smoke.
verify: build vet test race chaos-smoke
	@echo "verify: all gates passed"
