// Loadtest drives the full packetized testbed — every 20 ms RTP frame
// simulated end to end through the PBX relay — at a workload chosen on
// the command line, and prints the per-call quality distribution the
// way a VoIPmonitor operator would read it.
//
//	go run ./examples/loadtest -erlangs 160 -capacity 165
package main

import (
	"flag"
	"fmt"
	"sort"

	"repro"
	"repro/internal/stats"
)

func main() {
	var (
		erlangs  = flag.Float64("erlangs", 120, "offered load A")
		capacity = flag.Int("capacity", repro.DefaultCapacity, "PBX channels")
		seed     = flag.Uint64("seed", 42, "RNG seed")
	)
	flag.Parse()

	fmt.Printf("load test: A=%.0f Erlangs against %d channels (λ=%.2f calls/s, h=120s)\n",
		*erlangs, *capacity, *erlangs/120)

	res := repro.Run(repro.Experiment{
		Workload: repro.Erlangs(*erlangs),
		Capacity: *capacity,
		Media:    repro.MediaPacketized,
		Seed:     *seed,
	})

	fmt.Printf("\ncalls:     %d placed, %d established, %d blocked, %d failed\n",
		res.Load.Attempts, res.Load.Established, res.Load.Blocked, res.Load.Failed)
	fmt.Printf("blocking:  %.2f%%  (Erlang-B steady-state predicts %.2f%%)\n",
		res.BlockingProbability()*100, res.AnalyticalBlocking(*capacity)*100)
	fmt.Printf("channels:  peak %d of %d\n", res.ChannelsUsed, *capacity)
	fmt.Printf("cpu:       %.0f%% to %.0f%% (mean %.1f%%)\n", res.CPULo, res.CPUHi, res.CPUMean)
	fmt.Printf("rtp:       %d packets through the relay, %d dropped by overload\n",
		res.Server.RelayedPackets, res.Server.DroppedPackets)
	fmt.Printf("wire:      %d SIP messages (%d INVITE, %d errors), %d RTP msgs\n",
		res.Capture.Total, res.Capture.Invite, res.Capture.Errors, res.Capture.RTP)

	// Per-call MOS distribution of completed calls.
	var scores []float64
	for _, rec := range res.Load.Records {
		if rec.Established && rec.MOS > 0 {
			scores = append(scores, rec.MOS)
		}
	}
	sort.Float64s(scores)
	if len(scores) > 0 {
		fmt.Printf("\nMOS over %d completed calls (dropped calls not scored, as in the paper):\n", len(scores))
		fmt.Printf("  min %.3f   p10 %.3f   median %.3f   p90 %.3f   max %.3f   mean %.3f\n",
			scores[0],
			stats.Percentile(scores, 10),
			stats.Percentile(scores, 50),
			stats.Percentile(scores, 90),
			scores[len(scores)-1],
			stats.Mean(scores))
	}
	fmt.Printf("\nsimulated %d events in %v\n", res.Events, res.Elapsed.Round(1e6))
}
