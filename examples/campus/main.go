// Campus reproduces the VoWiFi dimensioning narrative of Sec. IV: a
// university (UnB) wants one Asterisk server to carry voice for a
// large population. It walks the paper's Figure 7 analysis for an
// 8000-user population, extends it to the full 50000-user campus, and
// evaluates the call-policy mitigation the paper proposes ("impose
// limits to the number of calls a user may place").
//
//	go run ./examples/campus -population 8000 -channels 165
package main

import (
	"flag"
	"fmt"

	"repro"
)

func main() {
	var (
		population = flag.Int("population", 8000, "users served by the VoWiFi project")
		channels   = flag.Int("channels", 165, "Asterisk server capacity (concurrent calls)")
	)
	flag.Parse()

	fmt.Printf("campus dimensioning: %d users, one PBX with %d channels\n\n", *population, *channels)

	// Figure 7: what fraction of the population can call in the busy
	// hour before blocking becomes painful, by mean call duration?
	fmt.Println("blocking vs busy-hour caller percentage (Fig. 7):")
	fmt.Printf("%8s%12s%12s%12s\n", "pop %", "2.0 min", "2.5 min", "3.0 min")
	for pct := 20; pct <= 100; pct += 20 {
		callsPerHour := float64(*population) * float64(pct) / 100
		fmt.Printf("%7d%%", pct)
		for _, dur := range []float64{2.0, 2.5, 3.0} {
			pb := repro.ErlangB(repro.Traffic(callsPerHour, dur), *channels)
			fmt.Printf("%11.2f%%", pb*100)
		}
		fmt.Println()
	}

	// The grade-of-service frontier: how many busy-hour callers can
	// the server sustain at 5% blocking?
	fmt.Println("\nmaximum busy-hour callers at 5% blocking:")
	amax, err := repro.AdmissibleTraffic(*channels, 0.05)
	if err != nil {
		panic(err)
	}
	for _, dur := range []float64{2.0, 2.5, 3.0} {
		callers := float64(amax) * 60 / dur
		fmt.Printf("  %.1f-minute calls: %.0f callers (%.1f%% of %d users)\n",
			dur, callers, callers/float64(*population)*100, *population)
	}

	// The paper's mitigation: a per-user call-duration policy. If the
	// institution caps calls at L minutes, how does the serviceable
	// fraction of the *full* 50000-user campus change, assuming 10% of
	// users call in the busy hour?
	fullCampus := 50000.0
	callsPerHour := fullCampus * 0.10
	fmt.Printf("\nfull campus (%.0f users, 10%% calling in the busy hour = %.0f calls/h):\n",
		fullCampus, callsPerHour)
	for _, limit := range []float64{1.0, 1.5, 2.0, 2.5, 3.0} {
		pb := repro.ErlangB(repro.Traffic(callsPerHour, limit), *channels)
		verdict := "OK"
		if pb > 0.05 {
			verdict = "over the 5% GoS target"
		}
		fmt.Printf("  policy: max %.1f min/call → Pb = %6.2f%%  (%s)\n", limit, pb*100, verdict)
	}

	// Or scale out: how many channels would the full campus need
	// without a policy (3-minute calls)?
	needed, err := repro.ChannelsFor(repro.Traffic(callsPerHour, 3), 0.05)
	if err != nil {
		panic(err)
	}
	fmt.Printf("\nwithout a policy, 3-minute calls need %d channels (%.1f servers of %d)\n",
		needed, float64(needed)/float64(*channels), *channels)
}
