// Callflow reproduces Figure 2 of the paper — "Operation of SIP
// protocol" — by running one call through the simulated Asterisk PBX
// and rendering the captured SIP message ladder between the call
// generator, the server and the call receiver.
//
//	go run ./examples/callflow
package main

import (
	"fmt"
	"os"
	"time"

	"repro/internal/directory"
	"repro/internal/monitor"
	"repro/internal/netsim"
	"repro/internal/pbx"
	"repro/internal/sip"
	"repro/internal/stats"
	"repro/internal/transport"
)

func main() {
	sched := netsim.NewScheduler()
	net := netsim.NewNetwork(sched, stats.NewRNG(1))
	net.SetDefaultProfile(netsim.LinkProfile{Delay: 2 * time.Millisecond})
	clock := transport.SimClock{Sched: sched}

	trace := monitor.NewFlowTrace()
	net.AddTap(trace.Tap())

	dir := directory.New()
	dir.AddUser(directory.User{Username: "generator", Password: "pw-generator"})
	dir.AddUser(directory.User{Username: "receiver", Password: "pw-receiver"})
	server := pbx.New(sip.NewEndpoint(transport.NewSim(net, "asterisk:5060"), clock), dir, nil, pbx.Config{})
	defer server.Close()

	mk := func(host, user string) *sip.Phone {
		return sip.NewPhone(sip.NewEndpoint(transport.NewSim(net, host+":5060"), clock),
			sip.PhoneConfig{User: user, Password: "pw-" + user, Proxy: "asterisk:5060",
				AnswerDelay: 2 * time.Second})
	}
	generator := mk("generator", "generator")
	receiver := mk("receiver", "receiver")
	generator.Register(time.Hour, nil)
	receiver.Register(time.Hour, nil)
	sched.Run(5 * time.Second)

	// One call: 10 s of conversation, then the generator hangs up —
	// exactly the Fig. 2 sequence.
	callPlaced := sched.Now()
	call := generator.Invite("receiver")
	call.OnEstablished = func(c *sip.Call) {
		clock.AfterFunc(10*time.Second, func() { generator.Hangup(c) })
	}
	sched.Run(5 * time.Minute)

	if call.State() != sip.CallTerminated || call.Cause() != sip.EndCompleted {
		fmt.Fprintln(os.Stderr, "call did not complete:", call.State(), call.Cause())
		os.Exit(1)
	}

	// Render only the call's messages (drop registration traffic).
	fmt.Println("Figure 2: operation of the SIP protocol (one call through the PBX)")
	fmt.Println()
	callTrace := monitor.NewFlowTrace()
	for _, e := range trace.Events() {
		if e.At >= callPlaced {
			callTrace.ObserveEvent(e)
		}
	}
	callTrace.Render(os.Stdout, []string{"generator", "asterisk", "receiver"})
	fmt.Println()
	fmt.Println("message counts:", callTrace.Summary())
	fmt.Printf("setup took %v; 9 messages to establish + 4 to tear down = 13 total\n",
		call.SetupTime().Round(time.Millisecond))
}
