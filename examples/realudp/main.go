// Realudp runs the whole stack on real loopback UDP sockets in one
// process: an Asterisk-style PBX, two softphones that register with
// digest auth, a call between them with genuine 440 Hz G.711 µ-law
// media relayed through the server, and the per-direction RTP
// statistics and MOS at the end — Fig. 2's message flow on real
// sockets instead of the simulator.
//
//	go run ./examples/realudp
package main

import (
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/directory"
	"repro/internal/media"
	"repro/internal/mos"
	"repro/internal/pbx"
	"repro/internal/sip"
	"repro/internal/telemetry"
	"repro/internal/transport"
)

func must[T any](v T, err error) T {
	if err != nil {
		fmt.Fprintln(os.Stderr, "realudp:", err)
		os.Exit(1)
	}
	return v
}

func main() {
	clock := transport.NewRealClock()

	// PBX on an ephemeral loopback port: two SO_REUSEPORT shards, each
	// with its own batched read loop, presented as one Transport. The
	// registry exposes the data-plane counters next to the SIP ones.
	pbxTr := must(transport.ListenUDPSharded("127.0.0.1:0", 2, transport.UDPConfig{}))
	reg := telemetry.NewRegistry()
	transport.PublishTelemetry(reg, "sip", pbxTr)
	dir := directory.New()
	dir.AddUser(directory.User{Username: "alice", Password: "pw-alice"})
	dir.AddUser(directory.User{Username: "bob", Password: "pw-bob"})
	host, _, _ := strings.Cut(pbxTr.LocalAddr(), ":")
	relayCfg := transport.UDPConfig{BatchSize: 8, BufferSize: transport.MaxDatagram}
	factory := func(port int) (transport.Transport, error) {
		if port == 0 {
			return transport.ListenUDPConfig(host+":0", relayCfg)
		}
		return transport.ListenUDPConfig(fmt.Sprintf("%s:%d", host, port), relayCfg)
	}
	server := pbx.New(sip.NewEndpoint(pbxTr, clock), dir, factory, pbx.Config{
		RelayRTP:    true,
		RTPPortBase: 17000,
		Telemetry:   reg,
	})
	defer server.Close()
	fmt.Printf("PBX listening on %s (%d shards, batched=%v)\n",
		pbxTr.LocalAddr(), pbxTr.NumShards(), pbxTr.Batched())

	// Both phones share the loopback IP, so they need disjoint RTP
	// port ranges (in the simulator each host has its own port space).
	mkPhone := func(user string, mediaPort int) *sip.Phone {
		tr := must(transport.ListenUDP("127.0.0.1:0"))
		return sip.NewPhone(sip.NewEndpoint(tr, clock), sip.PhoneConfig{
			User:      user,
			Password:  "pw-" + user,
			Proxy:     pbxTr.LocalAddr(),
			MediaPort: mediaPort,
		})
	}
	alice, bob := mkPhone("alice", 41000), mkPhone("bob", 42000)

	regOK := make(chan bool, 2)
	alice.Register(time.Hour, func(ok bool) { regOK <- ok })
	bob.Register(time.Hour, func(ok bool) { regOK <- ok })
	for i := 0; i < 2; i++ {
		if !<-regOK {
			fmt.Fprintln(os.Stderr, "registration failed")
			os.Exit(1)
		}
	}
	fmt.Println("alice and bob registered (digest auth)")

	// Media sessions are created when each leg learns its negotiated
	// RTP rendezvous. Both synthesize a real tone.
	newSession := func(c *sip.Call) *media.Session {
		mi := c.Media()
		tr := must(transport.ListenUDP(fmt.Sprintf("%s:%d", mi.LocalHost, mi.LocalPort)))
		return media.NewSession(tr, clock, media.SessionConfig{
			Remote:         fmt.Sprintf("%s:%d", mi.RemoteHost, mi.RemotePort),
			PayloadType:    uint8(mi.PayloadType),
			SynthesizeTone: true,
		})
	}

	done := make(chan struct{})
	var bobSess *media.Session
	// Over real sockets, install callbacks under Sync (and use
	// InviteWithHandlers) so traffic cannot race the assignments.
	bob.Sync(func() {
		bob.OnIncoming = func(c *sip.Call) {
			fmt.Println("bob: incoming call from alice, auto-answering")
			c.OnEstablished = func(c *sip.Call) {
				bobSess = newSession(c)
				bobSess.Start()
			}
		}
	})

	var aliceSess *media.Session
	_ = alice.InviteWithHandlers("bob",
		func(*sip.Call) { fmt.Println("alice: ringing…") },
		func(c *sip.Call) {
			fmt.Println("alice: call established; streaming 3 s of tone")
			aliceSess = newSession(c)
			aliceSess.Start()
			time.AfterFunc(3*time.Second, func() {
				aliceSess.Stop()
				if bobSess != nil {
					bobSess.Stop()
				}
				alice.Hangup(c)
			})
		},
		func(c *sip.Call) {
			fmt.Printf("alice: call ended (%v) after %v\n", c.Cause(), c.Duration().Round(time.Millisecond))
			close(done)
		})

	select {
	case <-done:
	case <-time.After(30 * time.Second):
		fmt.Fprintln(os.Stderr, "timed out")
		os.Exit(1)
	}
	// Give trailing packets a beat, then report.
	time.Sleep(200 * time.Millisecond)

	if aliceSess != nil {
		r := aliceSess.Report(mos.G711)
		fmt.Printf("alice media: sent %d pkts, received %d, loss %.2f%%, jitter %v, MOS %.2f\n",
			r.Sent, r.Stream.Received, r.EffectiveLoss*100, r.Stream.Jitter.Round(time.Microsecond), r.MOS)
	}
	if bobSess != nil {
		r := bobSess.Report(mos.G711)
		fmt.Printf("bob media:   sent %d pkts, received %d, loss %.2f%%, jitter %v, MOS %.2f\n",
			r.Sent, r.Stream.Received, r.EffectiveLoss*100, r.Stream.Jitter.Round(time.Microsecond), r.MOS)
	}
	for _, cdr := range server.CDRs() {
		fmt.Printf("PBX CDR: %s → %s, %v, completed=%v, relay MOS %.2f\n",
			cdr.Caller, cdr.Callee, cdr.Duration.Round(time.Millisecond), cdr.Completed, cdr.MOS)
	}
	c := server.CountersSnapshot()
	fmt.Printf("PBX relayed %d RTP packets\n", c.RelayedPackets)

	// Data-plane counters, straight from the telemetry registry the
	// transport publishes into (the same values /metrics would serve).
	var names []string
	vals := map[string]float64{}
	for _, fam := range reg.Snapshot().Families {
		if !strings.HasPrefix(fam.Name, "udp_") {
			continue
		}
		for _, m := range fam.Metrics {
			if m.Value != nil {
				names = append(names, fam.Name)
				vals[fam.Name] += *m.Value
			}
		}
	}
	sort.Strings(names)
	fmt.Println("SIP transport data plane:")
	for _, n := range names {
		fmt.Printf("  %s = %.0f\n", n, vals[n])
	}
}
