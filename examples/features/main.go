// Features demonstrates the PBX capabilities the paper enumerates
// beyond plain calls (Sec. I: "user authentication, call management
// (call detail records), monitoring, SMS messaging, voice messages and
// callback"), plus the Fig. 1 trunk to the campus telephone exchange:
//
//  1. instant messaging between registered users,
//
//  2. offline message store-and-forward,
//
//  3. a voicemail deposit for an unreachable user,
//
//  4. the message-waiting notification at next registration,
//
//  5. a dialplan-routed call to a "landline" through the trunk, with
//     DTMF digits sent mid-call,
//
//  6. the resulting CDR log in Asterisk Master.csv form.
//
//     go run ./examples/features
package main

import (
	"fmt"
	"os"
	"time"

	"repro/internal/directory"
	"repro/internal/media"
	"repro/internal/netsim"
	"repro/internal/pbx"
	"repro/internal/sip"
	"repro/internal/stats"
	"repro/internal/transport"
)

func main() {
	sched := netsim.NewScheduler()
	net := netsim.NewNetwork(sched, stats.NewRNG(2))
	net.SetDefaultProfile(netsim.LinkProfile{Delay: time.Millisecond})
	clock := transport.SimClock{Sched: sched}

	dir := directory.New()
	for _, u := range []string{"alice", "bob", "carol"} {
		dir.AddUser(directory.User{Username: u, Password: "pw-" + u})
	}
	factory := func(port int) (transport.Transport, error) {
		return transport.NewSim(net, fmt.Sprintf("pbx:%d", port)), nil
	}
	server := pbx.New(sip.NewEndpoint(transport.NewSim(net, "pbx:5060"), clock), dir, factory, pbx.Config{
		RelayRTP:             true,
		Voicemail:            true,
		StoreOfflineMessages: true,
		Dialplan: &pbx.Dialplan{Rules: []pbx.Rule{
			{Pattern: "_85XXXXXX", Kind: pbx.RouteTrunk, Trunk: "exchange:5060"},
		}},
	})
	defer server.Close()

	mk := func(host, user string) *sip.Phone {
		p := sip.NewPhone(sip.NewEndpoint(transport.NewSim(net, host+":5060"), clock),
			sip.PhoneConfig{User: user, Password: "pw-" + user, Proxy: "pbx:5060", MediaPort: 9000})
		p.Register(time.Hour, nil)
		return p
	}
	alice := mk("alice", "alice")
	bob := mk("bob", "bob")
	bob.OnMessage = func(from, body string) { fmt.Printf("bob got IM from %s: %q\n", from, body) }

	// The telephone exchange behind the trunk (Fig. 1).
	exchange := sip.NewPhone(sip.NewEndpoint(transport.NewSim(net, "exchange:5060"), clock),
		sip.PhoneConfig{User: "pstn", Proxy: "pbx:5060", MediaPort: 9500})
	var exchangeSession *media.Session
	exchange.OnIncoming = func(c *sip.Call) {
		fmt.Println("exchange: incoming trunk call for a landline")
		c.OnEstablished = func(c *sip.Call) {
			mi := c.Media()
			tr := transport.NewSim(net, fmt.Sprintf("%s:%d", mi.LocalHost, mi.LocalPort))
			exchangeSession = media.NewSession(tr, clock, media.SessionConfig{
				Remote: fmt.Sprintf("%s:%d", mi.RemoteHost, mi.RemotePort), SSRC: 99})
			exchangeSession.OnDigit(func(d rune, _ time.Duration) {
				fmt.Printf("exchange received DTMF digit %q\n", d)
			})
		}
	}
	sched.Run(5 * time.Second)

	// 1. IM between registered users.
	alice.SendMessage("bob", "lunch at noon?", nil)

	// 2. Offline store-and-forward: carol is provisioned but offline.
	alice.SendMessage("carol", "ping me when you are online", func(status int) {
		fmt.Printf("alice's IM to offline carol: status %d (stored)\n", status)
	})

	// 3. Voicemail: calling offline carol.
	vmCall := alice.Invite("carol")
	vmCall.OnEstablished = func(c *sip.Call) {
		fmt.Println("alice: voicemail answered; leaving a 4 s message")
		mi := c.Media()
		tr := transport.NewSim(net, fmt.Sprintf("%s:%d", mi.LocalHost, mi.LocalPort))
		sess := media.NewSession(tr, clock, media.SessionConfig{
			Remote: fmt.Sprintf("%s:%d", mi.RemoteHost, mi.RemotePort), SSRC: 7})
		sess.Start()
		clock.AfterFunc(4*time.Second, func() {
			sess.Stop()
			alice.Hangup(c)
		})
	}
	sched.Run(sched.Now() + 30*time.Second)

	// 4. Carol comes online: stored IM + MWI arrive.
	carol := mk("carol", "carol")
	carol.OnMessage = func(from, body string) { fmt.Printf("carol got message from %s: %q\n", from, body) }
	carol.Register(time.Hour, nil)
	sched.Run(sched.Now() + 10*time.Second)
	for _, vm := range server.Voicemails("carol") {
		fmt.Printf("voicemail stored for carol: from %s, %v, %d packets\n",
			vm.From, vm.Duration.Round(time.Millisecond), vm.Packets)
	}

	// 5. Trunk call with DTMF.
	trunkCall := alice.Invite("85123456")
	trunkCall.OnEstablished = func(c *sip.Call) {
		fmt.Println("alice: landline call established through the exchange trunk")
		mi := c.Media()
		tr := transport.NewSim(net, fmt.Sprintf("%s:%d", mi.LocalHost, mi.LocalPort))
		sess := media.NewSession(tr, clock, media.SessionConfig{
			Remote: fmt.Sprintf("%s:%d", mi.RemoteHost, mi.RemotePort), SSRC: 8})
		for i, d := range "42#" {
			d := d
			clock.AfterFunc(time.Duration(i+1)*time.Second, func() {
				sess.SendDigit(d, 120*time.Millisecond)
			})
		}
		clock.AfterFunc(8*time.Second, func() { alice.Hangup(c) })
	}
	sched.Run(sched.Now() + time.Minute)

	// 6. The CDR log.
	fmt.Println("\nCDR export (Master.csv layout):")
	if err := pbx.WriteCSV(os.Stdout, server.CDRs()); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	c := server.CountersSnapshot()
	fmt.Printf("\ncounters: %d IMs routed, %d stored, %d voicemail deposits, %d trunk calls\n",
		c.MessagesRouted, c.MessagesStored, c.VoicemailDeposits, c.TrunkCalls)
}
