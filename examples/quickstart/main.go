// Quickstart: dimension a PBX analytically with Erlang-B, then verify
// the answer against the simulated Asterisk testbed — the paper's two
// instruments in twenty lines.
package main

import (
	"fmt"

	"repro"
)

func main() {
	// The paper's busy-hour scenario (Sec. IV): 3000 calls of 3
	// minutes. How much traffic is that, and how many channels does a
	// 1.8%-blocking service need?
	load := repro.Traffic(3000, 3)
	fmt.Printf("offered traffic: %.0f Erlangs\n", load)

	n, err := repro.ChannelsFor(load, 0.018)
	if err != nil {
		panic(err)
	}
	fmt.Printf("channels for <=1.8%% blocking: %d (paper: 165)\n", n)
	fmt.Printf("Erlang-B check: B(%.0f, %d) = %.2f%%\n", load, n, repro.ErlangB(load, n)*100)

	// Now measure: offer 150 Erlangs to a PBX with exactly that many
	// channels and compare the simulated blocking.
	res := repro.Run(repro.Experiment{
		Workload: load,
		Capacity: n,
		Seed:     1,
	})
	fmt.Printf("empirical run: %d calls placed, %d blocked (Pb = %.2f%%), mean MOS %.2f\n",
		res.Load.Attempts, res.Load.Blocked,
		res.BlockingProbability()*100, res.MOS.Mean())
	fmt.Printf("peak concurrent calls: %d, server CPU %.0f%%-%.0f%%\n",
		res.ChannelsUsed, res.CPULo, res.CPUHi)
}
