// Command benchdiff is the benchmark-regression harness:
//
//	go test -bench ... | benchdiff -parse -o BENCH_20260806.json
//	benchdiff BENCH_20260701.json BENCH_20260806.json
//
// Parse mode converts `go test -bench` text output into a stable JSON
// snapshot (mean ns/op, allocs/op, B/op and custom metrics per
// benchmark, plus a derived events/sec wherever a benchmark reports
// events/run). Compare mode diffs two snapshots and exits non-zero if
// any shared benchmark regressed by more than the threshold (default
// 10%) in events/sec (throughput down) or allocs/op (allocations up) —
// the two engine metrics the capacity experiments are most sensitive
// to. Everything else is reported informationally.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Bench is the aggregated result of one benchmark across -count runs.
type Bench struct {
	Runs       int                `json:"runs"`
	NsPerOp    float64            `json:"ns_per_op,omitempty"`
	BytesPerOp float64            `json:"bytes_per_op,omitempty"`
	AllocsOp   *float64           `json:"allocs_per_op,omitempty"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

// Snapshot is one dated benchmark run of the repository.
type Snapshot struct {
	Generated  string           `json:"generated"`
	GoVersion  string           `json:"go"`
	Benchmarks map[string]Bench `json:"benchmarks"`
}

func main() {
	var (
		parse     = flag.Bool("parse", false, "parse `go test -bench` output (stdin or file arg) into JSON")
		out       = flag.String("o", "", "output file for -parse (default stdout)")
		threshold = flag.Float64("threshold", 0.10, "relative regression threshold")
	)
	flag.Parse()

	if *parse {
		if err := runParse(flag.Args(), *out); err != nil {
			fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [-threshold 0.10] old.json new.json")
		fmt.Fprintln(os.Stderr, "       benchdiff -parse [-o out.json] [bench-output.txt]")
		os.Exit(2)
	}
	old, err := load(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(1)
	}
	cur, err := load(flag.Arg(1))
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(1)
	}
	if compare(os.Stdout, old, cur, *threshold) {
		os.Exit(1)
	}
}

func runParse(args []string, outPath string) error {
	in := io.Reader(os.Stdin)
	if len(args) > 0 {
		f, err := os.Open(args[0])
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	snap, err := parseBench(in)
	if err != nil {
		return err
	}
	if len(snap.Benchmarks) == 0 {
		return fmt.Errorf("no benchmark lines found in input")
	}
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if outPath == "" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(outPath, data, 0o644)
}

// accum sums repeated runs of one benchmark for averaging.
type accum struct {
	runs    int
	sums    map[string]float64 // unit -> summed value
	counts  map[string]int
	hasAl   bool
	ordered []string
}

func parseBench(r io.Reader) (*Snapshot, error) {
	accums := map[string]*accum{}
	var order []string
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 || len(fields)%2 != 0 {
			continue
		}
		name := fields[0]
		// Strip the -GOMAXPROCS suffix so snapshots from different
		// machines stay comparable.
		if i := strings.LastIndexByte(name, '-'); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		a := accums[name]
		if a == nil {
			a = &accum{sums: map[string]float64{}, counts: map[string]int{}}
			accums[name] = a
			order = append(order, name)
		}
		a.runs++
		for i := 2; i+1 < len(fields); i += 2 {
			val, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			unit := fields[i+1]
			if _, seen := a.sums[unit]; !seen {
				a.ordered = append(a.ordered, unit)
			}
			a.sums[unit] += val
			a.counts[unit]++
			if unit == "allocs/op" {
				a.hasAl = true
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}

	snap := &Snapshot{
		Generated:  time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		Benchmarks: map[string]Bench{},
	}
	for _, name := range order {
		a := accums[name]
		b := Bench{Runs: a.runs}
		for _, unit := range a.ordered {
			mean := a.sums[unit] / float64(a.counts[unit])
			switch unit {
			case "ns/op":
				b.NsPerOp = mean
			case "B/op":
				b.BytesPerOp = mean
			case "allocs/op":
				v := mean
				b.AllocsOp = &v
			case "MB/s":
				// derived from ns/op; skip to keep snapshots small
			default:
				if b.Metrics == nil {
					b.Metrics = map[string]float64{}
				}
				b.Metrics[unit] = mean
			}
		}
		// Derived throughput: events simulated per wall-clock second.
		if ev, ok := b.Metrics["events/run"]; ok && b.NsPerOp > 0 {
			b.Metrics["events/sec"] = ev * 1e9 / b.NsPerOp
		}
		snap.Benchmarks[name] = b
	}
	return snap, nil
}

func load(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	return &s, nil
}

// compare prints a diff of the two snapshots and reports whether any
// guarded metric regressed beyond threshold.
func compare(w io.Writer, old, cur *Snapshot, threshold float64) (regressed bool) {
	names := make([]string, 0, len(cur.Benchmarks))
	for name := range cur.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)

	fmt.Fprintf(w, "benchdiff: %s -> %s (threshold %.0f%%)\n",
		old.Generated, cur.Generated, threshold*100)
	for _, name := range names {
		nb := cur.Benchmarks[name]
		ob, ok := old.Benchmarks[name]
		if !ok {
			fmt.Fprintf(w, "  %-40s new benchmark\n", name)
			continue
		}
		if ob.NsPerOp > 0 && nb.NsPerOp > 0 {
			fmt.Fprintf(w, "  %-40s ns/op      %14.1f -> %14.1f  (%+.1f%%)\n",
				name, ob.NsPerOp, nb.NsPerOp, pct(ob.NsPerOp, nb.NsPerOp))
		}
		// Guarded: events/sec must not drop more than threshold.
		oev, oHas := ob.Metrics["events/sec"]
		nev, nHas := nb.Metrics["events/sec"]
		if oHas && nHas && oev > 0 {
			bad := nev < oev*(1-threshold)
			mark := ""
			if bad {
				mark = "  REGRESSION"
				regressed = true
			}
			fmt.Fprintf(w, "  %-40s events/sec %14.0f -> %14.0f  (%+.1f%%)%s\n",
				name, oev, nev, pct(oev, nev), mark)
		}
		// Guarded: allocs/op must not rise more than threshold (with a
		// half-alloc slack so 0->0.4 rounding noise cannot fail a run).
		if ob.AllocsOp != nil && nb.AllocsOp != nil {
			oa, na := *ob.AllocsOp, *nb.AllocsOp
			bad := na > oa*(1+threshold)+0.5
			mark := ""
			if bad {
				mark = "  REGRESSION"
				regressed = true
			}
			fmt.Fprintf(w, "  %-40s allocs/op  %14.1f -> %14.1f%s\n", name, oa, na, mark)
		}
	}
	for name := range old.Benchmarks {
		if _, ok := cur.Benchmarks[name]; !ok {
			fmt.Fprintf(w, "  %-40s missing from new snapshot\n", name)
		}
	}
	if regressed {
		fmt.Fprintln(w, "benchdiff: FAIL")
	} else {
		fmt.Fprintln(w, "benchdiff: ok")
	}
	return regressed
}

func pct(old, new float64) float64 {
	if old == 0 {
		return math.NaN()
	}
	return (new - old) / old * 100
}
