package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"time"

	"repro/internal/sip"
	"repro/internal/stats"
	"repro/internal/transport"
)

// registerSummary is the machine-readable result of a -register run.
type registerSummary struct {
	Endpoints    int     `json:"endpoints"`
	Registered   int     `json:"registered"`
	Failed       int     `json:"failed"`
	Retries      int     `json:"retries"`
	Registers    int     `json:"registers"` // total 200 OKs incl. refreshes
	StaleRetries int     `json:"stale_retries"`
	PerSec       float64 `json:"reg_per_sec"`
	WindowS      float64 `json:"window_s"`
	ExpiresS     float64 `json:"expires_s"`
	Avalanche    bool    `json:"avalanche"`
	DrainS       float64 `json:"drain_s,omitempty"`
	Seed         uint64  `json:"seed"`
}

// registerOptions carries the -register flags from main.
type registerOptions struct {
	proxy     string
	bindHost  string
	endpoints int
	expires   time.Duration
	ramp      time.Duration
	window    time.Duration
	avalanche bool
	retries   int
	retryBase time.Duration
	seed      uint64
	jsonOut   bool
}

// runRegister is sipload's registration-storm mode: N endpoints, each
// on its own UDP socket, register against pbxd with their initial
// REGISTERs spread over the ramp, auto-refresh at 80% of the granted
// lifetime, and hold the population for the window. With -avalanche
// the whole population re-REGISTERs at once at the end — run it
// against a freshly restarted pbxd to reproduce the cold-restart wave
// (the restart empties the nonce cache, so every phone eats a
// stale=true re-challenge on top of the thundering herd).
func runRegister(o registerOptions) {
	info := func(format string, args ...any) {
		w := os.Stdout
		if o.jsonOut {
			w = os.Stderr
		}
		fmt.Fprintf(w, format, args...)
	}
	clock := transport.NewRealClock()
	rng := stats.NewRNG(o.seed)

	phones := make([]*sip.Phone, 0, o.endpoints)
	for i := 0; i < o.endpoints; i++ {
		tr, err := transport.ListenUDP(o.bindHost + ":0")
		if err != nil {
			fmt.Fprintln(os.Stderr, "sipload: register bind:", err)
			os.Exit(1)
		}
		user := fmt.Sprintf("u%d", i)
		phones = append(phones, sip.NewPhone(sip.NewEndpoint(tr, clock),
			sip.PhoneConfig{User: user, Password: "pw-" + user, Proxy: o.proxy,
				RefreshRegistration: true}))
	}

	var (
		mu         sync.Mutex
		registered int
		failed     int
		retried    int
		wg         sync.WaitGroup
	)
	// registerOnce drives one phone to a settled outcome, retrying shed
	// registrations with full-jitter backoff so the herd de-synchronizes
	// instead of re-colliding (pbxd's Retry-After spreading does the
	// same server-side; the client only sees the final status).
	var registerOnce func(p *sip.Phone, try int, settle func(ok bool))
	registerOnce = func(p *sip.Phone, try int, settle func(ok bool)) {
		p.Register(o.expires, func(ok bool) {
			if !ok && try < o.retries {
				mu.Lock()
				retried++
				delay := time.Duration(rng.Float64() * float64(o.retryBase<<uint(try)))
				mu.Unlock()
				time.AfterFunc(delay, func() { registerOnce(p, try+1, settle) })
				return
			}
			settle(ok)
		})
	}

	start := time.Now()
	for _, p := range phones {
		p := p
		wg.Add(1)
		mu.Lock()
		delay := time.Duration(rng.Float64() * float64(o.ramp))
		mu.Unlock()
		time.AfterFunc(delay, func() {
			registerOnce(p, 0, func(ok bool) {
				mu.Lock()
				if ok {
					registered++
				} else {
					failed++
				}
				mu.Unlock()
				wg.Done()
			})
		})
	}
	wg.Wait()
	info("sipload: %d/%d endpoints registered in %v (expires=%v, refreshing)\n",
		registered, o.endpoints, time.Since(start).Round(time.Millisecond), o.expires)
	if registered == 0 {
		fmt.Fprintln(os.Stderr, "sipload: no endpoint registered (is pbxd running with enough -users?)")
		os.Exit(1)
	}

	// Hold the population: refreshes run on the phones' own timers.
	if rest := o.window - time.Since(start); rest > 0 {
		time.Sleep(rest)
	}

	var drain time.Duration
	if o.avalanche {
		for _, p := range phones {
			p.StopRefreshing()
		}
		info("sipload: avalanche: re-registering all %d endpoints at once\n", o.endpoints)
		t0 := time.Now()
		var awg sync.WaitGroup
		for _, p := range phones {
			p := p
			awg.Add(1)
			go func() {
				registerOnce(p, 0, func(ok bool) {
					mu.Lock()
					if ok {
						// re-registration settles; counted via Registers()
					} else {
						failed++
					}
					mu.Unlock()
					awg.Done()
				})
			}()
		}
		awg.Wait()
		drain = time.Since(t0)
		info("sipload: avalanche drained in %v\n", drain.Round(time.Millisecond))
	}

	elapsed := time.Since(start)
	total, stale := 0, 0
	for _, p := range phones {
		total += p.Registers()
		stale += p.StaleRetries()
		p.StopRefreshing()
	}
	s := registerSummary{
		Endpoints: o.endpoints, Registered: registered, Failed: failed,
		Retries: retried, Registers: total, StaleRetries: stale,
		WindowS: o.window.Seconds(), ExpiresS: o.expires.Seconds(),
		Avalanche: o.avalanche, DrainS: drain.Seconds(), Seed: o.seed,
	}
	if elapsed > 0 {
		s.PerSec = float64(total) / elapsed.Seconds()
	}
	if o.jsonOut {
		if err := json.NewEncoder(os.Stdout).Encode(s); err != nil {
			fmt.Fprintln(os.Stderr, "sipload:", err)
			os.Exit(1)
		}
		return
	}
	fmt.Printf("sipload: registers=%d (initial %d, failed %d, retries %d, stale %d) rate=%.0f/s",
		s.Registers, s.Registered, s.Failed, s.Retries, s.StaleRetries, s.PerSec)
	if o.avalanche {
		fmt.Printf(" drain=%.3fs", s.DrainS)
	}
	fmt.Println()
}
