// Command sipload is the SIPp stand-in for real-UDP runs: it registers
// a caller (uac) and an auto-answering callee (uas) against a pbxd
// server, places calls at a Poisson rate for a window, holds each for
// the configured duration, and prints the blocking rate — the paper's
// empirical method (Fig. 5) on real sockets. With -media each
// established call also runs bidirectional G.711 RTP through the
// PBX relay, so the run reports packet rates and MOS alongside Pb;
// with -json the summary is machine-readable for experiment scripts.
//
//	pbxd -addr 127.0.0.1:5060 &
//	sipload -proxy 127.0.0.1:5060 -rate 2 -window 30s -hold 10s -media -json
//
// With -register it becomes a registration-storm generator instead: N
// endpoints (u0..uN-1) register over a ramp, refresh at 80% of the
// granted lifetime for the window, and with -avalanche re-REGISTER all
// at once at the end — restart pbxd first to reproduce the cold-start
// wave:
//
//	sipload -register -endpoints 500 -expires 30s -window 60s -avalanche
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"strings"
	"sync"
	"time"

	"repro/internal/media"
	"repro/internal/mos"
	"repro/internal/sip"
	"repro/internal/stats"
	"repro/internal/transport"
)

// summary is the machine-readable run result (-json).
type summary struct {
	Attempts    int     `json:"attempts"`
	Established int     `json:"established"`
	Blocked     int     `json:"blocked"`
	Failed      int     `json:"failed"`
	Throttled   int     `json:"throttled"`
	Retries     int     `json:"retries"`
	Pb          float64 `json:"pb"`
	Seed        uint64  `json:"seed"`
	Rate        float64 `json:"rate"`
	WindowS     float64 `json:"window_s"`
	HoldS       float64 `json:"hold_s"`
	ElapsedS    float64 `json:"elapsed_s"`
	Media       bool    `json:"media"`
	MediaLegs   int     `json:"media_legs,omitempty"`
	RTPSent     uint64  `json:"rtp_sent,omitempty"`
	RTPReceived uint64  `json:"rtp_received,omitempty"`
	// PPS is the endpoint-side RTP packet rate (sent+received across
	// both legs) over the whole run — every received packet crossed
	// the PBX relay once.
	PPS    float64 `json:"pps,omitempty"`
	MOSAvg float64 `json:"mos_avg,omitempty"`
	MOSMin float64 `json:"mos_min,omitempty"`
	// Measured per-stream sensor outputs, aggregated across legs:
	// RFC 3550 interarrival jitter, effective loss (network + late
	// discards, packet-weighted), and RTCP-derived round trips (zero
	// unless -rtcp is enabled and reports made it back).
	JitterAvgMs  float64 `json:"jitter_avg_ms,omitempty"`
	JitterMaxMs  float64 `json:"jitter_max_ms,omitempty"`
	LossRatio    float64 `json:"loss_ratio,omitempty"`
	RTTAvgMs     float64 `json:"rtt_avg_ms,omitempty"`
	RTTMaxMs     float64 `json:"rtt_max_ms,omitempty"`
	RTCPSent     uint64  `json:"rtcp_sent,omitempty"`
	RTCPReceived uint64  `json:"rtcp_received,omitempty"`
}

// mediaAgg accumulates per-leg media outcomes as calls finish.
type mediaAgg struct {
	mu       sync.Mutex
	legs     int
	sent     uint64
	received uint64
	mosSum   float64
	mosMin   float64
	ssrc     uint32

	jitterSum time.Duration
	jitterMax time.Duration
	lost      uint64 // network loss + late discards, across legs
	expected  uint64
	rttSum    time.Duration
	rttMax    time.Duration
	rttN      int
	rtcpSent  uint64
	rtcpRecv  uint64
}

func (a *mediaAgg) nextSSRC() uint32 {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.ssrc++
	return a.ssrc
}

// finish folds one ended leg's report into the aggregate and releases
// the session.
func (a *mediaAgg) finish(s *media.Session) {
	if s == nil {
		return
	}
	r := s.Report(mos.G711)
	s.Close()
	a.mu.Lock()
	a.legs++
	a.sent += r.Sent
	a.received += r.Stream.Received
	a.mosSum += r.MOS
	if a.legs == 1 || r.MOS < a.mosMin {
		a.mosMin = r.MOS
	}
	a.jitterSum += r.Stream.Jitter
	if r.Stream.Jitter > a.jitterMax {
		a.jitterMax = r.Stream.Jitter
	}
	if r.Stream.Expected > 0 {
		a.lost += uint64(r.Stream.Lost) + r.Late
		a.expected += uint64(r.Stream.Expected)
	}
	if r.RTT > 0 {
		a.rttSum += r.RTT
		a.rttN++
		if r.RTT > a.rttMax {
			a.rttMax = r.RTT
		}
	}
	a.rtcpSent += r.RTCPSent
	a.rtcpRecv += r.RTCPReceived
	a.mu.Unlock()
}

func main() {
	var (
		proxy     = flag.String("proxy", "127.0.0.1:5060", "PBX address")
		caller    = flag.String("caller-addr", "127.0.0.1:0", "caller UDP bind address")
		callee    = flag.String("callee-addr", "127.0.0.1:0", "callee UDP bind address")
		rate      = flag.Float64("rate", 1, "call arrival rate (calls/second)")
		window    = flag.Duration("window", 30*time.Second, "call placement window")
		hold      = flag.Duration("hold", 10*time.Second, "call hold time")
		target    = flag.String("target", "uas", "extension to dial")
		retries   = flag.Int("retries", 0, "max re-attempts after a 503/486 rejection")
		retryBase = flag.Duration("retry-base", 500*time.Millisecond, "base for full-jitter retry backoff")
		seed      = flag.Uint64("seed", 0, "RNG seed for arrivals and backoff jitter (0 = from wall clock)")
		withMedia = flag.Bool("media", false, "run bidirectional G.711 RTP on every established call")
		rtcp      = flag.Duration("rtcp", 2*time.Second, "RTCP sender-report interval on media legs, for RTT and loss feedback (0 = disabled)")
		mediaPort = flag.Int("media-port", 41000, "uac RTP port base (uas uses +8192); 2 ports per concurrent call")
		jsonOut   = flag.Bool("json", false, "print a JSON summary to stdout (progress goes to stderr)")

		register  = flag.Bool("register", false, "registration-storm mode: N endpoints register and refresh instead of placing calls")
		endpoints = flag.Int("endpoints", 100, "endpoint population for -register (pbxd must provision at least this many -users)")
		expires   = flag.Duration("expires", 60*time.Second, "binding lifetime requested by -register endpoints")
		regRamp   = flag.Duration("register-ramp", 2*time.Second, "spread of the initial REGISTERs in -register mode")
		avalanche = flag.Bool("avalanche", false, "after the window, re-REGISTER the whole population at once and report drain time")
	)
	flag.Parse()

	if *register {
		if *seed == 0 {
			*seed = uint64(time.Now().UnixNano())
		}
		host, _, _ := strings.Cut(*caller, ":")
		runRegister(registerOptions{
			proxy: *proxy, bindHost: host, endpoints: *endpoints,
			expires: *expires, ramp: *regRamp, window: *window,
			avalanche: *avalanche, retries: *retries, retryBase: *retryBase,
			seed: *seed, jsonOut: *jsonOut,
		})
		return
	}

	info := func(format string, args ...any) {
		w := os.Stdout
		if *jsonOut {
			w = os.Stderr
		}
		fmt.Fprintf(w, format, args...)
	}

	clock := transport.NewRealClock()
	mkPhone := func(addr, user string, mediaBase int) *sip.Phone {
		tr, err := transport.ListenUDP(addr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sipload:", err)
			os.Exit(1)
		}
		return sip.NewPhone(sip.NewEndpoint(tr, clock),
			sip.PhoneConfig{User: user, Password: "pw-" + user, Proxy: *proxy,
				MediaPort: mediaBase})
	}
	uac := mkPhone(*caller, "uac", *mediaPort)
	uas := mkPhone(*callee, *target, *mediaPort+8192)

	agg := &mediaAgg{}
	// startMedia opens this leg's negotiated RTP socket and starts a
	// paced G.711 session toward the peer (through the PBX relay). A
	// single 50 pps stream gains nothing from syscall batching, so the
	// phone side runs the portable loop and its small buffers — the
	// batched data plane under test is the server's.
	startMedia := func(c *sip.Call) *media.Session {
		mi := c.Media()
		tr, err := transport.ListenUDPConfig(
			fmt.Sprintf("%s:%d", mi.LocalHost, mi.LocalPort),
			transport.UDPConfig{DisableBatch: true})
		if err != nil {
			fmt.Fprintln(os.Stderr, "sipload: media bind:", err)
			return nil
		}
		sess := media.NewSession(tr, clock, media.SessionConfig{
			Remote:       fmt.Sprintf("%s:%d", mi.RemoteHost, mi.RemotePort),
			SSRC:         agg.nextSSRC(),
			RTCPInterval: *rtcp,
		})
		sess.Start()
		return sess
	}
	if *withMedia {
		uas.Sync(func() {
			uas.OnIncoming = func(c *sip.Call) {
				var sess *media.Session
				c.OnEstablished = func(c *sip.Call) { sess = startMedia(c) }
				c.OnEnded = func(*sip.Call) {
					if sess != nil {
						sess.Stop()
						agg.finish(sess)
					}
				}
			}
		})
	}

	reg := make(chan bool, 2)
	uac.Register(time.Hour, func(ok bool) { reg <- ok })
	uas.Register(time.Hour, func(ok bool) { reg <- ok })
	for i := 0; i < 2; i++ {
		select {
		case ok := <-reg:
			if !ok {
				fmt.Fprintln(os.Stderr, "sipload: registration failed (is pbxd running?)")
				os.Exit(1)
			}
		case <-time.After(5 * time.Second):
			fmt.Fprintln(os.Stderr, "sipload: registration timeout (is pbxd running?)")
			os.Exit(1)
		}
	}
	info("sipload: registered uac and %s at %s; λ=%.2f/s window=%v hold=%v (A=%.1f E)\n",
		*target, *proxy, *rate, *window, *hold, *rate*hold.Seconds())

	var (
		mu          sync.Mutex
		attempts    int
		established int
		blocked     int
		failed      int
		throttled   int
		retried     int
		wg          sync.WaitGroup

		// Server overload feedback (X-Overload-Window): arrivals inside
		// the window are paced past its edge with full jitter; a window
		// that re-arms sheds the deferred arrival client-side.
		throttleUntil time.Time
		lastWindow    int
	)
	noteOverload := func(c *sip.Call) {
		w := c.OverloadWindow()
		if w <= 0 {
			return
		}
		mu.Lock()
		if until := time.Now().Add(time.Duration(w) * time.Second); until.After(throttleUntil) {
			throttleUntil = until
		}
		lastWindow = w
		mu.Unlock()
	}
	if *seed == 0 {
		*seed = uint64(time.Now().UnixNano())
	}
	rng := stats.NewRNG(*seed)

	// place dials once; on a capacity rejection (503/486) with retry
	// budget left it backs off with AWS-style full jitter — the
	// server's Retry-After floor plus U(0, base·2^try) — and tries
	// again. Full jitter desynchronizes the retry herd: deterministic
	// exponential delays make every rejected caller return in the same
	// tick and re-collide.
	var place func(try int)
	place = func(try int) {
		var sess *media.Session
		uac.InviteWithHandlers(*target, nil, func(c *sip.Call) {
			noteOverload(c)
			mu.Lock()
			established++
			mu.Unlock()
			if *withMedia {
				sess = startMedia(c)
			}
			time.AfterFunc(*hold, func() { uac.Hangup(c) })
		}, func(c *sip.Call) {
			if sess != nil {
				sess.Stop()
				agg.finish(sess)
				sess = nil
			}
			noteOverload(c)
			capacity := false
			if c.Cause() == sip.EndRejected {
				capacity = c.RejectStatus() == sip.StatusServiceUnavailable ||
					c.RejectStatus() == sip.StatusBusyHere
			}
			if capacity && try < *retries {
				mu.Lock()
				retried++
				mu.Unlock()
				window := *retryBase << uint(try)
				delay := time.Duration(c.RetryAfter()) * time.Second
				delay += time.Duration(rng.Float64() * float64(window))
				time.AfterFunc(delay, func() { place(try + 1) })
				return
			}
			if c.Cause() == sip.EndRejected {
				mu.Lock()
				if capacity {
					blocked++
				} else {
					failed++
				}
				mu.Unlock()
			} else if c.Cause() == sip.EndTimeout {
				mu.Lock()
				failed++
				mu.Unlock()
			}
			wg.Done()
		})
	}

	start := time.Now()
	deadline := start.Add(*window)
	for time.Now().Before(deadline) {
		gap := time.Duration(rng.Exp(1 / *rate) * float64(time.Second))
		time.Sleep(gap)
		if !time.Now().Before(deadline) {
			break
		}
		// Honor the server's overload window: pace this arrival past the
		// window edge plus a full-jitter draw (the same seeded RNG as the
		// retry backoff); if the window re-armed while we slept, shed the
		// call client-side as throttled instead of placing it.
		mu.Lock()
		until, w := throttleUntil, lastWindow
		mu.Unlock()
		if now := time.Now(); now.Before(until) {
			jitter := time.Duration(rng.Float64() * float64(time.Duration(w)*time.Second))
			time.Sleep(until.Sub(now) + jitter)
			mu.Lock()
			still := time.Now().Before(throttleUntil)
			if still {
				attempts++
				throttled++
			}
			mu.Unlock()
			if still {
				continue
			}
		}
		mu.Lock()
		attempts++
		mu.Unlock()
		wg.Add(1)
		place(0)
	}
	wg.Wait()
	elapsed := time.Since(start)
	// Let the callee legs' OnEnded handlers drain before reading agg.
	time.Sleep(200 * time.Millisecond)

	pb := 0.0
	if attempts > 0 {
		pb = float64(blocked) / float64(attempts)
	}
	s := summary{
		Attempts: attempts, Established: established, Blocked: blocked,
		Failed: failed, Throttled: throttled, Retries: retried, Pb: pb, Seed: *seed,
		Rate: *rate, WindowS: window.Seconds(), HoldS: hold.Seconds(),
		ElapsedS: elapsed.Seconds(), Media: *withMedia,
	}
	if *withMedia {
		agg.mu.Lock()
		s.MediaLegs = agg.legs
		s.RTPSent = agg.sent
		s.RTPReceived = agg.received
		if elapsed > 0 {
			s.PPS = float64(agg.sent+agg.received) / elapsed.Seconds()
		}
		if agg.legs > 0 {
			s.MOSAvg = agg.mosSum / float64(agg.legs)
			s.MOSMin = agg.mosMin
			s.JitterAvgMs = agg.jitterSum.Seconds() * 1000 / float64(agg.legs)
			s.JitterMaxMs = agg.jitterMax.Seconds() * 1000
		}
		if agg.expected > 0 {
			s.LossRatio = float64(agg.lost) / float64(agg.expected)
		}
		if agg.rttN > 0 {
			s.RTTAvgMs = agg.rttSum.Seconds() * 1000 / float64(agg.rttN)
			s.RTTMaxMs = agg.rttMax.Seconds() * 1000
		}
		s.RTCPSent = agg.rtcpSent
		s.RTCPReceived = agg.rtcpRecv
		agg.mu.Unlock()
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		if err := enc.Encode(s); err != nil {
			fmt.Fprintln(os.Stderr, "sipload:", err)
			os.Exit(1)
		}
	} else {
		fmt.Printf("sipload: attempts=%d established=%d blocked=%d failed=%d throttled=%d retries=%d Pb=%.2f%%\n",
			attempts, established, blocked, failed, throttled, retried, pb*100)
		if *withMedia {
			fmt.Printf("sipload: media legs=%d rtp_sent=%d rtp_received=%d pps=%.0f mos_avg=%.2f mos_min=%.2f\n",
				s.MediaLegs, s.RTPSent, s.RTPReceived, s.PPS, s.MOSAvg, s.MOSMin)
			fmt.Printf("sipload: measured jitter_avg=%.2fms jitter_max=%.2fms loss=%.4f rtt_avg=%.1fms rtt_max=%.1fms rtcp=%d/%d\n",
				s.JitterAvgMs, s.JitterMaxMs, s.LossRatio, s.RTTAvgMs, s.RTTMaxMs,
				s.RTCPReceived, s.RTCPSent)
		}
	}
	if math.IsNaN(pb) {
		os.Exit(1)
	}
}
