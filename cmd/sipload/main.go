// Command sipload is the SIPp stand-in for real-UDP runs: it registers
// a caller (uac) and an auto-answering callee (uas) against a pbxd
// server, places calls at a Poisson rate for a window, holds each for
// the configured duration, and prints the blocking rate — the paper's
// empirical method (Fig. 5) on real sockets.
//
//	pbxd -addr 127.0.0.1:5060 &
//	sipload -proxy 127.0.0.1:5060 -rate 2 -window 30s -hold 10s
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"sync"
	"time"

	"repro/internal/sip"
	"repro/internal/stats"
	"repro/internal/transport"
)

func main() {
	var (
		proxy     = flag.String("proxy", "127.0.0.1:5060", "PBX address")
		caller    = flag.String("caller-addr", "127.0.0.1:0", "caller UDP bind address")
		callee    = flag.String("callee-addr", "127.0.0.1:0", "callee UDP bind address")
		rate      = flag.Float64("rate", 1, "call arrival rate (calls/second)")
		window    = flag.Duration("window", 30*time.Second, "call placement window")
		hold      = flag.Duration("hold", 10*time.Second, "call hold time")
		target    = flag.String("target", "uas", "extension to dial")
		retries   = flag.Int("retries", 0, "max re-attempts after a 503/486 rejection")
		retryBase = flag.Duration("retry-base", 500*time.Millisecond, "base for full-jitter retry backoff")
		seed      = flag.Uint64("seed", 0, "RNG seed for arrivals and backoff jitter (0 = from wall clock)")
	)
	flag.Parse()

	clock := transport.NewRealClock()
	mkPhone := func(addr, user string) *sip.Phone {
		tr, err := transport.ListenUDP(addr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sipload:", err)
			os.Exit(1)
		}
		return sip.NewPhone(sip.NewEndpoint(tr, clock),
			sip.PhoneConfig{User: user, Password: "pw-" + user, Proxy: *proxy})
	}
	uac := mkPhone(*caller, "uac")
	uas := mkPhone(*callee, *target)

	reg := make(chan bool, 2)
	uac.Register(time.Hour, func(ok bool) { reg <- ok })
	uas.Register(time.Hour, func(ok bool) { reg <- ok })
	for i := 0; i < 2; i++ {
		select {
		case ok := <-reg:
			if !ok {
				fmt.Fprintln(os.Stderr, "sipload: registration failed (is pbxd running?)")
				os.Exit(1)
			}
		case <-time.After(5 * time.Second):
			fmt.Fprintln(os.Stderr, "sipload: registration timeout (is pbxd running?)")
			os.Exit(1)
		}
	}
	fmt.Printf("sipload: registered uac and %s at %s; λ=%.2f/s window=%v hold=%v (A=%.1f E)\n",
		*target, *proxy, *rate, *window, *hold, *rate*hold.Seconds())

	var (
		mu          sync.Mutex
		attempts    int
		established int
		blocked     int
		failed      int
		retried     int
		wg          sync.WaitGroup
	)
	if *seed == 0 {
		*seed = uint64(time.Now().UnixNano())
	}
	rng := stats.NewRNG(*seed)

	// place dials once; on a capacity rejection (503/486) with retry
	// budget left it backs off with AWS-style full jitter — the
	// server's Retry-After floor plus U(0, base·2^try) — and tries
	// again. Full jitter desynchronizes the retry herd: deterministic
	// exponential delays make every rejected caller return in the same
	// tick and re-collide.
	var place func(try int)
	place = func(try int) {
		uac.InviteWithHandlers(*target, nil, func(c *sip.Call) {
			mu.Lock()
			established++
			mu.Unlock()
			time.AfterFunc(*hold, func() { uac.Hangup(c) })
		}, func(c *sip.Call) {
			capacity := false
			if c.Cause() == sip.EndRejected {
				capacity = c.RejectStatus() == sip.StatusServiceUnavailable ||
					c.RejectStatus() == sip.StatusBusyHere
			}
			if capacity && try < *retries {
				mu.Lock()
				retried++
				mu.Unlock()
				window := *retryBase << uint(try)
				delay := time.Duration(c.RetryAfter()) * time.Second
				delay += time.Duration(rng.Float64() * float64(window))
				time.AfterFunc(delay, func() { place(try + 1) })
				return
			}
			if c.Cause() == sip.EndRejected {
				mu.Lock()
				if capacity {
					blocked++
				} else {
					failed++
				}
				mu.Unlock()
			} else if c.Cause() == sip.EndTimeout {
				mu.Lock()
				failed++
				mu.Unlock()
			}
			wg.Done()
		})
	}

	deadline := time.Now().Add(*window)
	for time.Now().Before(deadline) {
		gap := time.Duration(rng.Exp(1 / *rate) * float64(time.Second))
		time.Sleep(gap)
		if !time.Now().Before(deadline) {
			break
		}
		mu.Lock()
		attempts++
		mu.Unlock()
		wg.Add(1)
		place(0)
	}
	wg.Wait()

	pb := 0.0
	if attempts > 0 {
		pb = float64(blocked) / float64(attempts)
	}
	fmt.Printf("sipload: attempts=%d established=%d blocked=%d failed=%d retries=%d Pb=%.2f%%\n",
		attempts, established, blocked, failed, retried, pb*100)
	if math.IsNaN(pb) {
		os.Exit(1)
	}
}
