package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"repro/internal/core"
	"repro/internal/erlang"
	"repro/internal/monitor"
	"repro/internal/telemetry"
)

// telemetryDump is the on-disk shape of -telemetry-out: one fully
// instrumented experiment's end-of-run metrics snapshot plus its
// per-second sampler series, with enough run metadata to reproduce it.
type telemetryDump struct {
	Workload erlang.Erlangs     `json:"workload_erlangs"`
	Capacity int                `json:"capacity"`
	Seed     uint64             `json:"seed"`
	Snapshot telemetry.Snapshot `json:"snapshot"`
	Series   []monitor.Sample   `json:"series"`
}

// requiredFamilies is the contract a telemetry dump must satisfy:
// every layer of the stack — PBX call handling, admission, tracing,
// SIP wire, media relay, scheduler — must have reported in.
var requiredFamilies = []string{
	"pbx_invites_total",
	"pbx_admission_total",
	"pbx_active_channels",
	"pbx_calls_total",
	"pbx_call_setup_seconds",
	"sip_messages_total",
	"sip_retransmissions_total",
	"rtp_relay_packets_total",
	"sched_events_total",
	"pbx_call_mos_measured",
	"pbx_slo_breach_total",
}

// runTelemetryDump executes one instrumented overload run (A=200 E on
// the configured capacity, the paper's Table I saturation column),
// writes the JSON dump, then re-reads and validates it — the smoke
// path `make verify` exercises.
func runTelemetryDump(out io.Writer, path string, capacity int, seed uint64, shards int) error {
	const workload = 200
	res := core.Run(core.ExperimentConfig{Workload: workload, Capacity: capacity, Seed: seed, Shards: shards})
	dump := telemetryDump{
		Workload: workload,
		Capacity: capacity,
		Seed:     seed,
		Snapshot: res.Telemetry,
		Series:   res.Series,
	}
	data, err := json.MarshalIndent(dump, "", "  ")
	if err != nil {
		return fmt.Errorf("marshal: %w", err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}

	// Validate the artifact as a consumer would: parse the bytes from
	// disk, not the structs still in memory.
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var back telemetryDump
	if err := json.Unmarshal(raw, &back); err != nil {
		return fmt.Errorf("re-read: %w", err)
	}
	if err := telemetry.ValidateSnapshot(back.Snapshot, requiredFamilies...); err != nil {
		return err
	}
	if len(back.Series) == 0 {
		return fmt.Errorf("telemetry dump has an empty per-second series")
	}
	setupN := uint64(0)
	for _, s := range back.Series {
		setupN += s.SetupN
	}
	if setupN == 0 {
		return fmt.Errorf("series recorded no call setups at A=%d E", workload)
	}
	fmt.Fprintf(out, "telemetry: wrote %s (%d families, %d samples, %d setups, blocking %.3f, setup p50 %.1f ms)\n",
		path, len(back.Snapshot.Families), len(back.Series), setupN,
		back.Snapshot.Scalar("pbx_blocked_total")/back.Snapshot.Scalar("pbx_invites_total"),
		1000*back.Snapshot.Quantile("pbx_call_setup_seconds", 0.5))
	return nil
}
