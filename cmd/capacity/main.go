// Command capacity reproduces every table and figure of the paper's
// evaluation section in one run:
//
//	capacity -all          # everything (Table I in packetized mode)
//	capacity -fig3         # analytical Erlang-B curves
//	capacity -table1       # the empirical method at A=40..240
//	capacity -fig6         # empirical vs Erlang-B N=160/165/170
//	capacity -fig7         # population dimensioning
//	capacity -sizing       # the Sec. IV worked example
//	capacity -ablations    # design-choice ablations
//	capacity -codec-mix    # mixed-codec transcoding capacity
//	capacity -shard-scaling # sharded-engine throughput scaling
//	capacity -registrar    # registrar throughput + avalanche drain vs shards
//	                         (-registrar-wire adds the loopback-UDP column)
//
// -shards N runs the experiment engine partitioned across N shard
// goroutines (bit-identical results, faster on multi-core hosts).
//
// -quick switches Table I to the flow-level media model and trims
// replication counts, for a fast sanity pass.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"repro/internal/bench"
)

func main() {
	var (
		all       = flag.Bool("all", false, "run every table and figure")
		fig3      = flag.Bool("fig3", false, "Figure 3: Erlang-B curves")
		table1    = flag.Bool("table1", false, "Table I: empirical method")
		fig6      = flag.Bool("fig6", false, "Figure 6: empirical vs analytical")
		fig7      = flag.Bool("fig7", false, "Figure 7: population blocking")
		sizing    = flag.Bool("sizing", false, "Sec. IV sizing check")
		ablations = flag.Bool("ablations", false, "design ablations")
		frontier  = flag.Bool("frontier", false, "overload-strategy frontier: MOS-weighted carried minutes head-to-head")
		extras    = flag.Bool("extras", false, "codec, finite-population and redial studies")
		codecMix  = flag.Bool("codec-mix", false, "mixed-codec transcoding capacity table")
		quick     = flag.Bool("quick", false, "fast mode: flow media, fewer reps")
		steady    = flag.Bool("steady", false, "Figure 6 in steady-state mode (longer windows, warmup)")
		scaling   = flag.Bool("shard-scaling", false, "engine scaling: events/sec at shards=1,2,4")
		registrar = flag.Bool("registrar", false, "registrar throughput and avalanche-drain vs location-store shard count")
		regWire   = flag.Bool("registrar-wire", false, "add the loopback-UDP column to -registrar (real sockets)")
		capacity  = flag.Int("capacity", 165, "PBX channel capacity")
		shards    = flag.Int("shards", 0, "run experiments on the partitioned engine with N shards (0 = classic engine)")
		workers   = flag.Int("workers", runtime.GOMAXPROCS(0), "parallel experiment workers")
		seed      = flag.Uint64("seed", 20150525, "base RNG seed")
		cpuProf   = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf   = flag.String("memprofile", "", "write a heap profile to this file on exit")
		telOut    = flag.String("telemetry-out", "", "run one instrumented A=200 E experiment and write its telemetry JSON dump here")
	)
	flag.Parse()
	if *telOut == "" && !(*all || *fig3 || *table1 || *fig6 || *fig7 || *sizing || *ablations || *frontier || *extras || *codecMix || *scaling || *registrar) {
		*all = true
	}
	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintf(os.Stderr, "capacity: cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "capacity: cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintf(os.Stderr, "capacity: memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle allocations so the heap profile is sharp
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "capacity: memprofile: %v\n", err)
			}
		}()
	}
	out := os.Stdout
	start := time.Now()

	if *telOut != "" {
		if err := runTelemetryDump(out, *telOut, *capacity, *seed, *shards); err != nil {
			fmt.Fprintf(os.Stderr, "capacity: telemetry-out: %v\n", err)
			os.Exit(1)
		}
	}
	if *all || *fig3 {
		bench.WriteFig3(out, bench.Fig3(260))
		fmt.Fprintln(out)
	}
	if *all || *table1 {
		cols := bench.TableI(bench.TableIOptions{
			Capacity:  *capacity,
			FlowMedia: *quick,
			Workers:   *workers,
			Seed:      *seed,
			Shards:    *shards,
		})
		bench.WriteTableI(out, cols)
		fmt.Fprintln(out)
	}
	if *all || *fig6 {
		reps := 3
		if *quick {
			reps = 1
		}
		opts := bench.Fig6Options{
			Capacity:    *capacity,
			Reps:        reps,
			Workers:     *workers,
			SteadyState: *steady,
			Seed:        *seed,
		}
		points := bench.Fig6(opts)
		bench.WriteFig6(out, points, []int{160, 165, 170})
		fmt.Fprintln(out)
	}
	if *all || *fig7 {
		bench.WriteFig7(out, bench.Fig7(8000, *capacity), 8000, *capacity)
		fmt.Fprintln(out)
	}
	if *all || *sizing {
		bench.WriteSizing(out, bench.Sizing())
		fmt.Fprintln(out)
	}
	if *all || *ablations {
		bench.WriteAdmissionAblation(out, bench.RunAdmissionAblation(240, *seed))
		fmt.Fprintln(out)
		bench.WriteMediaAblation(out, bench.RunMediaAblation(*seed))
		fmt.Fprintln(out)
		reps := 3
		if *quick {
			reps = 2
		}
		bench.WriteArrivalAblation(out, bench.RunArrivalAblation(200, reps, *seed))
		fmt.Fprintln(out)
		bench.WriteHoldAblation(out, bench.RunHoldAblation(200, reps, *seed))
		fmt.Fprintln(out)
		bench.WriteClusterScaling(out, bench.RunClusterScaling(240, 165, 3, *seed))
		fmt.Fprintln(out)
	}
	if *all || *frontier {
		tbl, err := bench.RunStrategyFrontier(*seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, "capacity: frontier:", err)
			os.Exit(1)
		}
		bench.WriteStrategyFrontier(out, tbl)
		fmt.Fprintln(out)
	}
	if *all || *scaling {
		counts := []int{1, 2, 4}
		if *shards > 1 {
			counts = []int{1, *shards}
		}
		bench.WriteShardScaling(out, bench.ShardScalingTable(bench.ShardScalingOptions{
			Capacity:    *capacity,
			ShardCounts: counts,
			Seed:        *seed,
		}))
		fmt.Fprintln(out)
	}
	if *all || *registrar {
		bench.WriteRegistrarCapacity(out, bench.RegistrarCapacityTable(bench.RegistrarOptions{
			Seed: *seed,
			Wire: *regWire,
		}))
		fmt.Fprintln(out)
	}
	if *all || *codecMix {
		opts := bench.CodecMixOptions{Workers: *workers, Seed: *seed}
		if *quick {
			opts.Workload = 120
		}
		bench.WriteCodecMix(out, bench.CodecMixTable(opts))
		fmt.Fprintln(out)
	}
	if *all || *extras {
		bench.WriteCodecComparison(out, bench.CodecComparison())
		fmt.Fprintln(out)
		bench.WriteFinitePopulation(out, 150, *capacity,
			bench.FinitePopulation(150, *capacity, []int{200, 400, 1000, 8000, 50000}))
		fmt.Fprintln(out)
		bench.WriteRetryInflation(out, 200, *capacity,
			bench.RetryInflation(200, *capacity, []float64{0, 0.25, 0.5, 0.75}))
		fmt.Fprintln(out)
		bench.WriteWiFiStudy(out, bench.WiFiStudy(*seed))
		fmt.Fprintln(out)
	}
	fmt.Fprintf(out, "done in %v\n", time.Since(start).Round(time.Millisecond))
}
