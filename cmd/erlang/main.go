// Command erlang is a teletraffic calculator over the models of
// internal/erlang:
//
//	erlang -a 150 -n 165              # blocking of 150 E on 165 channels
//	erlang -calls 3000 -minutes 3 -n 165
//	erlang -a 150 -pb 0.018           # channels needed for 1.8% blocking
//	erlang -n 165 -pb 0.05            # admissible load at 5% blocking
//	erlang -a 150 -n 165 -c           # Erlang-C waiting probability
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/erlang"
)

func main() {
	var (
		a       = flag.Float64("a", 0, "offered traffic in Erlangs")
		calls   = flag.Float64("calls", 0, "busy-hour call attempts (alternative to -a)")
		minutes = flag.Float64("minutes", 0, "mean call duration in minutes (with -calls)")
		n       = flag.Int("n", 0, "number of channels")
		pb      = flag.Float64("pb", 0, "target blocking probability (enables inverse solving)")
		useC    = flag.Bool("c", false, "report Erlang-C waiting probability instead of Erlang-B loss")
	)
	flag.Parse()

	load := erlang.Erlangs(*a)
	if *calls > 0 && *minutes > 0 {
		load = erlang.Traffic(*calls, *minutes)
		fmt.Printf("offered traffic: %.2f Erlangs (%.0f calls/h x %.2g min)\n", float64(load), *calls, *minutes)
	}

	switch {
	case load > 0 && *n > 0 && *pb == 0:
		if *useC {
			fmt.Printf("Erlang-C  P(wait)  A=%.4g N=%d : %.4f%%\n", float64(load), *n, erlang.C(load, *n)*100)
		} else {
			fmt.Printf("Erlang-B  Pb      A=%.4g N=%d : %.4f%%\n", float64(load), *n, erlang.B(load, *n)*100)
		}
	case load > 0 && *pb > 0 && *n == 0:
		ch, err := erlang.ChannelsFor(load, *pb)
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		fmt.Printf("channels for A=%.4g at Pb<=%.3g%%: N=%d (actual Pb %.4f%%)\n",
			float64(load), *pb*100, ch, erlang.B(load, ch)*100)
	case *n > 0 && *pb > 0 && load == 0:
		amax, err := erlang.TrafficFor(*n, *pb)
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		fmt.Printf("admissible traffic on N=%d at Pb<=%.3g%%: %.2f Erlangs\n", *n, *pb*100, float64(amax))
	default:
		flag.Usage()
		os.Exit(2)
	}
}
