// Command pbxtop is a live terminal dashboard for a running pbxd: it
// polls the admin plane's /metrics (Prometheus text, parsed with the
// repo's own parser) and /debug/calls (wide call events) once per
// interval and redraws a one-screen summary — call rates, blocking,
// per-codec load, the measured-MOS distribution, SLO breach state,
// transport batch efficiency and the most recent call records.
//
//	pbxtop -admin 127.0.0.1:9690 -interval 1s
//
// -once prints a single frame without clearing the screen (script- and
// test-friendly); -frames N exits after N redraws.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/pbx"
	"repro/internal/telemetry"
)

// scrape is one polled view of the server.
type scrape struct {
	at    time.Time
	ix    telemetry.PromIndex
	calls []pbx.CallEvent
	err   error
}

func poll(client *http.Client, base string) scrape {
	s := scrape{at: time.Now()}
	resp, err := client.Get(base + "/metrics")
	if err != nil {
		s.err = err
		return s
	}
	samples, err := telemetry.ParsePrometheus(resp.Body)
	resp.Body.Close()
	if err != nil {
		s.err = err
		return s
	}
	s.ix = telemetry.IndexSamples(samples)
	if resp, err = client.Get(base + "/debug/calls"); err == nil {
		err = json.NewDecoder(resp.Body).Decode(&s.calls)
		resp.Body.Close()
	}
	if err != nil {
		s.err = fmt.Errorf("/debug/calls: %w", err)
	}
	return s
}

// rate returns the per-second rate of a cumulative family between two
// scrapes (0 on the first frame).
func rate(prev, cur scrape, name string) float64 {
	if prev.ix == nil {
		return 0
	}
	dt := cur.at.Sub(prev.at).Seconds()
	if dt <= 0 {
		return 0
	}
	return (cur.ix.Sum(name) - prev.ix.Sum(name)) / dt
}

func pct(num, den float64) float64 {
	if den <= 0 {
		return 0
	}
	return 100 * num / den
}

// mosBars renders the measured-MOS histogram as per-bucket bars. The
// exposition carries cumulative bucket counts; differences restore the
// per-bucket populations.
func mosBars(ix telemetry.PromIndex) []string {
	type bk struct {
		le  float64
		n   float64
		lab string
	}
	var buckets []bk
	for _, s := range ix["pbx_call_mos_measured_bucket"] {
		le := s.Label("le")
		if le == "+Inf" {
			// Overflow: clean G.711 scores ~4.38 land above the top
			// bound, so the pane must show this row or healthy servers
			// render an empty histogram.
			buckets = append(buckets, bk{le: math.Inf(1), n: s.Value, lab: "inf"})
			continue
		}
		var f float64
		fmt.Sscanf(le, "%g", &f)
		buckets = append(buckets, bk{le: f, n: s.Value, lab: le})
	}
	sort.Slice(buckets, func(i, j int) bool { return buckets[i].le < buckets[j].le })
	var max float64
	prev := 0.0
	for i := range buckets {
		buckets[i].n -= prev
		prev += buckets[i].n
		if buckets[i].n > max {
			max = buckets[i].n
		}
	}
	var out []string
	lo := "-inf"
	for _, b := range buckets {
		if b.n > 0 || max > 0 {
			bar := ""
			if max > 0 {
				bar = strings.Repeat("#", int(1+29*b.n/max))
				if b.n == 0 {
					bar = ""
				}
			}
			out = append(out, fmt.Sprintf("  %5s..%-5s %6.0f %s", lo, b.lab, b.n, bar))
		}
		lo = b.lab
	}
	return out
}

func render(w *strings.Builder, base string, frame int, prev, cur scrape) {
	ix := cur.ix
	fmt.Fprintf(w, "pbxtop — %s — %s — frame %d\n\n",
		base, cur.at.Format("15:04:05"), frame)

	offered := rate(prev, cur, "pbx_invites_total")
	answered := rate(prev, cur, "pbx_calls_established_total")
	blocked := rate(prev, cur, "pbx_blocked_total")
	fmt.Fprintf(w, "CALLS      offered/s %6.1f   answered/s %6.1f   blocked/s %6.1f   Pb(total) %5.1f%%\n",
		offered, answered, blocked,
		pct(ix.Sum("pbx_blocked_total"), ix.Sum("pbx_invites_total")))

	draining := "no"
	if ix.Sum("pbx_draining") > 0 {
		draining = "YES"
	}
	fmt.Fprintf(w, "CHANNELS   active %4.0f   peak %4.0f   draining %-3s   transcode load %4.1f%%\n",
		ix.Sum("pbx_active_channels"), ix.Sum("pbx_peak_channels"),
		draining, ix.Sum("pbx_transcode_load_percent"))

	stage := pbx.DegradationStage(int(ix.Sum("pbx_degradation_stage")))
	byStage := ix.ByLabel("pbx_calls_by_stage_total", "stage")
	var stageCols []string
	for st := pbx.StageNormal; st <= pbx.StageBlock; st++ {
		if n := byStage[st.String()]; n > 0 || st == pbx.StageNormal {
			stageCols = append(stageCols, fmt.Sprintf("%s:%.0f", st.String(), n))
		}
	}
	degMark := ""
	if stage > pbx.StageNormal {
		degMark = "  << DEGRADED"
	}
	fmt.Fprintf(w, "DEGRADE    stage %-17s transitions %3.0f   throttle signals %.0f%s\n",
		stage, ix.Sum("pbx_degradation_transitions_total"),
		ix.Sum("pbx_throttle_signals_total"), degMark)
	fmt.Fprintf(w, "           admits by stage: %s\n", strings.Join(stageCols, "  "))

	byCodec := ix.ByLabel("pbx_calls_by_codec_total", "codec")
	var codecs []string
	for name, n := range byCodec {
		if n > 0 {
			codecs = append(codecs, fmt.Sprintf("%s:%.0f", name, n))
		}
	}
	sort.Strings(codecs)
	if len(codecs) == 0 {
		codecs = []string{"(none)"}
	}
	fmt.Fprintf(w, "CODECS     answered by codec: %s   transcoded %.0f\n",
		strings.Join(codecs, "  "), ix.Sum("pbx_transcoded_calls_total"))

	fmt.Fprintf(w, "MOS(meas)  n=%.0f  (modeled n=%.0f)\n",
		ix.Sum("pbx_call_mos_measured_count"), ix.Sum("pbx_call_mos_count"))
	for _, line := range mosBars(ix) {
		fmt.Fprintln(w, line)
	}

	byRule := ix.ByLabel("pbx_slo_breach_total", "rule")
	var rules []string
	for name := range byRule {
		rules = append(rules, name)
	}
	sort.Strings(rules)
	var ruleCols []string
	for _, r := range rules {
		ruleCols = append(ruleCols, fmt.Sprintf("%s:%.0f", r, byRule[r]))
	}
	active := ix.Sum("pbx_slo_active_breaches")
	mark := ""
	if active > 0 {
		mark = "  << BREACHING"
	}
	fmt.Fprintf(w, "SLO        active breaches %.0f   breach seconds %s%s\n",
		active, strings.Join(ruleCols, "  "), mark)

	rxShards := ix.ByLabel("udp_rx_packets_total", "shard")
	var shardCols []string
	for shard := range rxShards {
		if shard != "" {
			shardCols = append(shardCols, fmt.Sprintf("s%s:%.0f", shard, rxShards[shard]))
		}
	}
	sort.Strings(shardCols)
	shardTxt := ""
	if len(shardCols) > 0 {
		shardTxt = "  [" + strings.Join(shardCols, " ") + "]"
	}
	rxBatches := ix.Sum("udp_rx_batches_total")
	perBatch := 0.0
	if rxBatches > 0 {
		perBatch = ix.Sum("udp_rx_packets_total") / rxBatches
	}
	fmt.Fprintf(w, "TRANSPORT  rx/s %7.0f   tx/s %7.0f   drops %.0f   rx pkts/syscall %.1f%s\n",
		rate(prev, cur, "udp_rx_packets_total"), rate(prev, cur, "udp_tx_packets_total"),
		ix.Sum("udp_tx_dropped_total"), perBatch, shardTxt)
	fmt.Fprintf(w, "RELAY      rtp/s %6.0f   rtcp/s %5.0f   relay drops %.0f\n",
		rate(prev, cur, "rtp_relay_packets_total"), rate(prev, cur, "rtp_relay_rtcp_total"),
		ix.Sum("rtp_relay_dropped_total"))

	fmt.Fprintf(w, "\nRECENT CALLS (%d in ring)\n", len(cur.calls))
	tail := cur.calls
	if len(tail) > 5 {
		tail = tail[len(tail)-5:]
	}
	for _, ev := range tail {
		codec := ev.CodecA
		if ev.CodecB != "" && ev.CodecB != ev.CodecA {
			codec += ">" + ev.CodecB
		}
		if codec == "" {
			codec = "-"
		}
		mos := "-"
		if ev.MeasuredMOS > 0 {
			mos = fmt.Sprintf("%.2f", ev.MeasuredMOS)
		}
		fmt.Fprintf(w, "  %-9s %-12s %s->%s %s dur %.1fs mos %s\n",
			ev.Disposition, ev.CallID, ev.Caller, ev.Callee, codec, ev.DurationS, mos)
	}
}

func main() {
	var (
		admin    = flag.String("admin", "127.0.0.1:9690", "pbxd admin HTTP address")
		interval = flag.Duration("interval", time.Second, "poll interval")
		once     = flag.Bool("once", false, "print one frame and exit (no screen clearing)")
		frames   = flag.Int("frames", 0, "exit after this many frames (0 = run until interrupted)")
	)
	flag.Parse()
	base := "http://" + *admin
	client := &http.Client{Timeout: 5 * time.Second}

	var prev scrape
	frame := 0
	for {
		frame++
		cur := poll(client, base)
		if cur.err != nil {
			fmt.Fprintf(os.Stderr, "pbxtop: %s: %v\n", base, cur.err)
			if *once || (*frames > 0 && frame >= *frames) {
				os.Exit(1)
			}
			time.Sleep(*interval)
			continue
		}
		var buf strings.Builder
		if !*once {
			buf.WriteString("\x1b[2J\x1b[H") // clear screen, home cursor
		}
		render(&buf, *admin, frame, prev, cur)
		os.Stdout.WriteString(buf.String())
		prev = cur
		if *once || (*frames > 0 && frame >= *frames) {
			return
		}
		time.Sleep(*interval)
	}
}
