// Command lintmetrics enforces the repo's telemetry naming rule: every
// metric family registered on a telemetry.Registry must be named by a
// snake_case string constant from the registering package, and each
// family-name constant must be declared exactly once across the tree —
// so `grep <const>` finds the single definition, renames cannot
// half-happen, and no two subsystems can silently claim one family.
//
//	lintmetrics [dir ...]   (default: ./internal ./cmd)
//
// Registration methods checked: Counter, Gauge, Histogram, CounterFunc,
// GaugeFunc. Test files and testdata trees are exempt (tests may build
// throwaway registries with literal names). Exits 1 with one line per
// violation.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

var registrationMethods = map[string]bool{
	"Counter": true, "Gauge": true, "Histogram": true,
	"CounterFunc": true, "GaugeFunc": true,
}

var snakeCase = regexp.MustCompile(`^[a-z][a-z0-9_]*$`)

// constDecl is one top-level string constant declaration.
type constDecl struct {
	pos   token.Position
	value string
}

// registration is one metric-family registration call site.
type registration struct {
	pos    token.Position
	method string
	arg    ast.Expr
	pkgDir string
}

func main() {
	dirs := os.Args[1:]
	if len(dirs) == 0 {
		dirs = []string{"./internal", "./cmd"}
	}
	fset := token.NewFileSet()
	// consts[pkgDir][name] = declarations of that const in the package.
	consts := map[string]map[string][]constDecl{}
	// declsByValue counts const declarations per family-name value.
	declsByValue := map[string][]constDecl{}
	var regs []registration

	for _, root := range dirs {
		err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() {
				if d.Name() == "testdata" {
					return filepath.SkipDir
				}
				return nil
			}
			if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
				return nil
			}
			file, err := parser.ParseFile(fset, path, nil, 0)
			if err != nil {
				return fmt.Errorf("parse %s: %w", path, err)
			}
			pkgDir := filepath.Dir(path)
			collect(fset, file, pkgDir, consts, declsByValue, &regs)
			return nil
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "lintmetrics:", err)
			os.Exit(2)
		}
	}

	var violations []string
	families := map[string]bool{}
	for _, r := range regs {
		switch arg := r.arg.(type) {
		case *ast.BasicLit:
			violations = append(violations, fmt.Sprintf(
				"%s: %s registration uses string literal %s; name it with a package const",
				r.pos, r.method, arg.Value))
		case *ast.Ident:
			decls := consts[r.pkgDir][arg.Name]
			if len(decls) == 0 {
				violations = append(violations, fmt.Sprintf(
					"%s: %s registration name %q does not resolve to a string const in %s",
					r.pos, r.method, arg.Name, r.pkgDir))
				continue
			}
			value := decls[0].value
			families[value] = true
			if !snakeCase.MatchString(value) {
				violations = append(violations, fmt.Sprintf(
					"%s: family name %q (const %s) is not snake_case", r.pos, value, arg.Name))
			}
			if n := len(declsByValue[value]); n != 1 {
				var where []string
				for _, d := range declsByValue[value] {
					where = append(where, d.pos.String())
				}
				violations = append(violations, fmt.Sprintf(
					"%s: family name %q declared by %d consts (%s); want exactly one",
					r.pos, value, n, strings.Join(where, ", ")))
			}
		default:
			violations = append(violations, fmt.Sprintf(
				"%s: %s registration name is a %T expression; use a package string const",
				r.pos, r.method, r.arg))
		}
	}

	if len(violations) > 0 {
		sort.Strings(violations)
		seen := map[string]bool{}
		for _, v := range violations {
			if !seen[v] {
				seen[v] = true
				fmt.Fprintln(os.Stderr, v)
			}
		}
		os.Exit(1)
	}
	fmt.Printf("lintmetrics: OK (%d registration sites, %d families)\n", len(regs), len(families))
}

// collect gathers the file's top-level string consts and registration
// call sites.
func collect(fset *token.FileSet, file *ast.File, pkgDir string,
	consts map[string]map[string][]constDecl, declsByValue map[string][]constDecl,
	regs *[]registration) {
	for _, decl := range file.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.CONST {
			continue
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for i, name := range vs.Names {
				if i >= len(vs.Values) {
					continue
				}
				lit, ok := vs.Values[i].(*ast.BasicLit)
				if !ok || lit.Kind != token.STRING {
					continue
				}
				value, err := strconv.Unquote(lit.Value)
				if err != nil {
					continue
				}
				cd := constDecl{pos: fset.Position(name.Pos()), value: value}
				if consts[pkgDir] == nil {
					consts[pkgDir] = map[string][]constDecl{}
				}
				consts[pkgDir][name.Name] = append(consts[pkgDir][name.Name], cd)
				declsByValue[value] = append(declsByValue[value], cd)
			}
		}
	}
	ast.Inspect(file, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || !registrationMethods[sel.Sel.Name] || len(call.Args) < 2 {
			return true
		}
		*regs = append(*regs, registration{
			pos:    fset.Position(call.Pos()),
			method: sel.Sel.Name,
			arg:    call.Args[0],
			pkgDir: pkgDir,
		})
		return true
	})
}
