package main

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"

	"repro/internal/pbx"
	"repro/internal/telemetry"
)

// startAdmin serves the observability and control plane over HTTP:
//
//	/metrics      Prometheus text exposition of the telemetry registry
//	/healthz      readiness probe (200 "ok", 503 while draining)
//	/drain        POST: begin graceful drain (503 new calls, finish old)
//	/debug/vars   the registry's JSON snapshot (expvar-style)
//	/debug/calls  wide-event records of recently torn-down calls (JSON)
//	/debug/flight the tracer's flight-recorder ring (JSON, oldest first)
//	/debug/pprof  the standard Go profiling handlers
//
// The mux is private — none of this is registered on
// http.DefaultServeMux, so importing net/http/pprof side-effects
// elsewhere cannot widen the surface. Returns the bound address
// (useful with ":0").
func startAdmin(addr string, reg *telemetry.Registry, healthy func() bool, drain func(),
	calls func() []pbx.CallEvent, flight func() []telemetry.SpanEvent) (string, error) {
	mux := http.NewServeMux()
	mux.HandleFunc("/drain", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST required", http.StatusMethodNotAllowed)
			return
		}
		if drain == nil {
			http.Error(w, "drain not supported", http.StatusNotImplemented)
			return
		}
		drain()
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "draining")
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.WritePrometheus(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		if healthy != nil && !healthy() {
			http.Error(w, "unhealthy", http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, r *http.Request) {
		out, err := reg.Snapshot().MarshalIndent()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		w.Write(out)
	})
	mux.HandleFunc("/debug/calls", func(w http.ResponseWriter, r *http.Request) {
		ev := []pbx.CallEvent{}
		if calls != nil {
			if v := calls(); v != nil {
				ev = v
			}
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		json.NewEncoder(w).Encode(ev)
	})
	mux.HandleFunc("/debug/flight", func(w http.ResponseWriter, r *http.Request) {
		ev := []telemetry.SpanEvent{}
		if flight != nil {
			if v := flight(); v != nil {
				ev = v
			}
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		json.NewEncoder(w).Encode(ev)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	go http.Serve(ln, mux)
	return ln.Addr().String(), nil
}
