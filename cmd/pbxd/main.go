// Command pbxd runs the Asterisk-style PBX on a real UDP socket, so
// the same server code measured in the simulation can be driven with
// cmd/sipload (or any SIP user agent) over loopback or a LAN:
//
//	pbxd -addr 127.0.0.1:5060 -capacity 165 -users 200 -relay
//
// Provisioned users are u0…uN-1 with passwords pw-u0…, plus the
// generator pair uac/uas. Statistics print every 5 s and on SIGINT.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"time"

	"repro/internal/directory"
	"repro/internal/pbx"
	"repro/internal/sip"
	"repro/internal/telemetry"
	"repro/internal/transport"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:5060", "UDP listen address")
		capacity = flag.Int("capacity", pbx.DefaultCapacity, "channel capacity (0 = unlimited)")
		users    = flag.Int("users", 100, "number of provisioned users (u0..uN-1)")
		relay    = flag.Bool("relay", true, "relay RTP through the server")
		rtpBase  = flag.Int("rtp-base", 10000, "first RTP relay port")
		quiet    = flag.Bool("quiet", false, "suppress periodic stats")
		occ      = flag.Float64("occupancy", 0, "shed load at this fraction of capacity with 503+Retry-After (0 = hard cap)")
		admin    = flag.String("admin", "127.0.0.1:9690", "admin HTTP address serving /metrics, /healthz, /debug/vars and /debug/pprof (empty = disabled)")
		shards   = flag.Int("shards", 1, "SO_REUSEPORT listener shards on the SIP port (1 = single socket)")
	)
	flag.Parse()

	// The SIP listener runs the batched data plane; with -shards > 1
	// the kernel spreads inbound flows across N sockets on the port.
	tr, err := transport.ListenUDPSharded(*addr, *shards, transport.UDPConfig{})
	if err != nil {
		fmt.Fprintln(os.Stderr, "pbxd:", err)
		os.Exit(1)
	}
	clock := transport.NewRealClock()
	ep := sip.NewEndpoint(tr, clock)
	reg := telemetry.NewRegistry()
	ep.UseTelemetry(reg)
	transport.PublishTelemetry(reg, "sip", tr)

	dir := directory.New()
	dir.Provision("u", 0, *users)
	dir.AddUser(directory.User{Username: "uac", Password: "pw-uac"})
	dir.AddUser(directory.User{Username: "uas", Password: "pw-uas"})

	host, _, _ := strings.Cut(tr.LocalAddr(), ":")
	// Relay legs are per-call, so they trade receive-side aggregation
	// (GRO needs 64KB buffers) for bounded memory: a small batch of
	// small buffers still amortizes syscalls and sends with GSO.
	relayCfg := transport.UDPConfig{BatchSize: 8, BufferSize: transport.MaxDatagram}
	factory := func(port int) (transport.Transport, error) {
		return transport.ListenUDPConfig(fmt.Sprintf("%s:%d", host, port), relayCfg)
	}
	cfg := pbx.Config{
		MaxChannels: *capacity,
		RelayRTP:    *relay,
		RTPPortBase: *rtpBase,
		Seed:        uint64(time.Now().UnixNano()),
		Telemetry:   reg,
	}
	if *occ > 0 {
		if *occ > 1 {
			fmt.Fprintln(os.Stderr, "pbxd: -occupancy must be in (0,1]")
			os.Exit(1)
		}
		cfg.Admission = pbx.OccupancyPolicy{Max: *capacity, Target: *occ}
	}
	server := pbx.New(ep, dir, factory, cfg)
	fmt.Printf("pbxd: listening on %s (%d shard(s), batched=%v), capacity %d, %d users, relay=%v, admission=%s\n",
		tr.LocalAddr(), tr.NumShards(), tr.Batched(),
		*capacity, dir.Users(), *relay, server.AdmissionPolicyName())

	if *admin != "" {
		// /healthz doubles as the load-balancer readiness signal: it
		// flips to 503 the moment a drain starts, before the last call
		// ends, so orchestrators stop routing while calls finish.
		bound, err := startAdmin(*admin, reg,
			func() bool { return !server.Draining() },
			func() { server.Drain() })
		if err != nil {
			fmt.Fprintln(os.Stderr, "pbxd: admin:", err)
			os.Exit(1)
		}
		fmt.Printf("pbxd: admin HTTP on http://%s (/metrics /healthz /drain /debug/vars /debug/pprof)\n", bound)
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt)
	tick := time.NewTicker(5 * time.Second)
	defer tick.Stop()
	for {
		select {
		case <-tick.C:
			if !*quiet {
				c := server.CountersSnapshot()
				_, mean, _ := server.CPUBand()
				st := tr.Stats()
				fmt.Printf("pbxd: active=%d attempts=%d established=%d blocked=%d relayed=%d cpu~%.1f%% sip_rx=%d(%d batches) sip_tx=%d\n",
					server.ActiveChannels(), c.Attempts, c.Established, c.Blocked, c.RelayedPackets, mean,
					st.RxPackets, st.RxBatches, st.TxPackets)
			}
		case <-stop:
			server.Close()
			c := server.CountersSnapshot()
			st := tr.Stats()
			gets, puts := tr.PoolStats()
			fmt.Printf("\npbxd: final counters: %+v\n", c)
			fmt.Printf("pbxd: sip transport: %+v pool gets=%d puts=%d\n", st, gets, puts)
			return
		}
	}
}
