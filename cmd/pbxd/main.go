// Command pbxd runs the Asterisk-style PBX on a real UDP socket, so
// the same server code measured in the simulation can be driven with
// cmd/sipload (or any SIP user agent) over loopback or a LAN:
//
//	pbxd -addr 127.0.0.1:5060 -capacity 165 -users 200 -relay
//
// Provisioned users are u0…uN-1 with passwords pw-u0…, plus the
// generator pair uac/uas. Statistics print every 5 s and on SIGINT.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"time"

	"repro/internal/directory"
	"repro/internal/monitor"
	"repro/internal/pbx"
	"repro/internal/sip"
	"repro/internal/telemetry"
	"repro/internal/transport"
)

// dumpFlight writes the flight-recorder ring as JSON — the crash-path
// twin of /debug/flight. Best-effort: a failed dump must not mask the
// panic that triggered it.
func dumpFlight(path string, events []telemetry.SpanEvent) {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pbxd: flight dump:", err)
		return
	}
	json.NewEncoder(f).Encode(events)
	f.Close()
	fmt.Fprintf(os.Stderr, "pbxd: flight recorder dumped to %s (%d events)\n", path, len(events))
}

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:5060", "UDP listen address")
		capacity = flag.Int("capacity", pbx.DefaultCapacity, "channel capacity (0 = unlimited)")
		users    = flag.Int("users", 100, "number of provisioned users (u0..uN-1)")
		relay    = flag.Bool("relay", true, "relay RTP through the server")
		rtpBase  = flag.Int("rtp-base", 10000, "first RTP relay port")
		quiet    = flag.Bool("quiet", false, "suppress periodic stats")
		occ      = flag.Float64("occupancy", 0, "shed load at this fraction of capacity with 503+Retry-After (0 = hard cap)")
		degrade  = flag.Bool("degrade", false, "enable the graceful-degradation ladder (codec downgrade, passthrough-only, upstream throttle, block)")
		admin    = flag.String("admin", "127.0.0.1:9690", "admin HTTP address serving /metrics, /healthz, /debug/vars, /debug/calls, /debug/flight and /debug/pprof (empty = disabled)")
		shards   = flag.Int("shards", 1, "SO_REUSEPORT listener shards on the SIP port (1 = single socket)")
		callLog  = flag.String("call-log", "", "append one JSON call event per teardown to this file (empty = ring buffer only)")
		instance = flag.String("instance", "pbxd", "instance name stamped into call events (backend field)")
		flight   = flag.String("flight-dump", "pbxd-flight.json", "write the flight-recorder ring here on panic (empty = disabled)")

		registrar = flag.Bool("registrar", true, "enable the sharded registrar plane (binding TTL wheel, nonce cache, REGISTER admission lane)")
		dirShards = flag.Int("dir-shards", 0, "location-store shard count, power of two (0 = default 16)")
		regRate   = flag.Int("register-rate", 0, "max REGISTER arrivals per second before shedding with a spread Retry-After (0 = uncapped)")
	)
	flag.Parse()

	// The SIP listener runs the batched data plane; with -shards > 1
	// the kernel spreads inbound flows across N sockets on the port.
	tr, err := transport.ListenUDPSharded(*addr, *shards, transport.UDPConfig{})
	if err != nil {
		fmt.Fprintln(os.Stderr, "pbxd:", err)
		os.Exit(1)
	}
	clock := transport.NewRealClock()
	ep := sip.NewEndpoint(tr, clock)
	reg := telemetry.NewRegistry()
	ep.UseTelemetry(reg)
	transport.PublishTelemetry(reg, "sip", tr)

	var dir *directory.Directory
	if *dirShards > 0 {
		dir = directory.NewSharded(*dirShards)
	} else {
		dir = directory.New()
	}
	dir.Provision("u", 0, *users)
	dir.AddUser(directory.User{Username: "uac", Password: "pw-uac"})
	dir.AddUser(directory.User{Username: "uas", Password: "pw-uas"})

	host, _, _ := strings.Cut(tr.LocalAddr(), ":")
	// Relay legs are per-call, so they trade receive-side aggregation
	// (GRO needs 64KB buffers) for bounded memory: a small batch of
	// small buffers still amortizes syscalls and sends with GSO.
	relayCfg := transport.UDPConfig{BatchSize: 8, BufferSize: transport.MaxDatagram}
	factory := func(port int) (transport.Transport, error) {
		return transport.ListenUDPConfig(fmt.Sprintf("%s:%d", host, port), relayCfg)
	}
	cfg := pbx.Config{
		MaxChannels: *capacity,
		RelayRTP:    *relay,
		// Real endpoints stamp RTP from their own clocks; transit
		// estimates at the relay are epoch offsets, not delays.
		RemoteMediaClocks: true,
		RTPPortBase:       *rtpBase,
		Seed:              uint64(time.Now().UnixNano()),
		Telemetry:         reg,
		Instance:          *instance,
	}
	if *registrar {
		// The registrar plane runs the binding-expiry wheel on the wall
		// clock (pbx.New arms it from the endpoint clock) and REGISTER's
		// own admission lane — REGISTER is never refused for channel
		// capacity, only by this rate cap.
		cfg.Registrar = pbx.RegistrarConfig{
			Enabled:            true,
			MaxRegistersPerSec: *regRate,
		}
	}
	if *callLog != "" {
		f, err := os.OpenFile(*callLog, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pbxd: call-log:", err)
			os.Exit(1)
		}
		defer f.Close()
		cfg.CallLog = f
	}
	if *occ > 0 {
		if *occ > 1 {
			fmt.Fprintln(os.Stderr, "pbxd: -occupancy must be in (0,1]")
			os.Exit(1)
		}
		cfg.Admission = pbx.OccupancyPolicy{Max: *capacity, Target: *occ}
	}
	if *degrade {
		cfg.Degradation = pbx.DegradationConfig{Enabled: true}
	}
	server := pbx.New(ep, dir, factory, cfg)
	fmt.Printf("pbxd: listening on %s (%d shard(s), batched=%v), capacity %d, %d users, relay=%v, admission=%s, degrade=%v\n",
		tr.LocalAddr(), tr.NumShards(), tr.Batched(),
		*capacity, dir.Users(), *relay, server.AdmissionPolicyName(), *degrade)
	if *registrar {
		fmt.Printf("pbxd: registrar on: %d location shards, register rate cap %d/s\n",
			dir.Shards(), *regRate)
	}

	// The flight recorder is most valuable exactly when the process
	// dies: dump the ring before re-panicking so a crashed run leaves
	// its last ~512 call-stage transitions on disk.
	if *flight != "" {
		defer func() {
			if r := recover(); r != nil {
				dumpFlight(*flight, server.TraceEvents())
				panic(r)
			}
		}()
	}

	// The same per-second sampler + SLO evaluator the simulator runs,
	// on the wall clock: breach counters and the active-breach gauge
	// land in /metrics for pbxtop and any scraper.
	sampler := monitor.NewSampler(reg, clock)
	slo := monitor.NewSLO(reg, monitor.DefaultSLORules())
	sampler.SetObserver(slo.Observe)
	sampler.Start()

	if *admin != "" {
		// /healthz doubles as the load-balancer readiness signal: it
		// flips to 503 the moment a drain starts, before the last call
		// ends, so orchestrators stop routing while calls finish.
		bound, err := startAdmin(*admin, reg,
			func() bool { return !server.Draining() },
			func() { server.Drain() },
			server.RecentCalls, server.TraceEvents)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pbxd: admin:", err)
			os.Exit(1)
		}
		fmt.Printf("pbxd: admin HTTP on http://%s (/metrics /healthz /drain /debug/vars /debug/calls /debug/flight /debug/pprof)\n", bound)
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt)
	tick := time.NewTicker(5 * time.Second)
	defer tick.Stop()
	for {
		select {
		case <-tick.C:
			if !*quiet {
				c := server.CountersSnapshot()
				_, mean, _ := server.CPUBand()
				st := tr.Stats()
				fmt.Printf("pbxd: active=%d attempts=%d established=%d blocked=%d relayed=%d cpu~%.1f%% sip_rx=%d(%d batches) sip_tx=%d\n",
					server.ActiveChannels(), c.Attempts, c.Established, c.Blocked, c.RelayedPackets, mean,
					st.RxPackets, st.RxBatches, st.TxPackets)
			}
		case <-stop:
			server.Close()
			c := server.CountersSnapshot()
			st := tr.Stats()
			gets, puts := tr.PoolStats()
			fmt.Printf("\npbxd: final counters: %+v\n", c)
			fmt.Printf("pbxd: sip transport: %+v pool gets=%d puts=%d\n", st, gets, puts)
			return
		}
	}
}
