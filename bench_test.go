// Benchmarks regenerating every table and figure of the paper's
// evaluation (see DESIGN.md's per-experiment index), plus root-level
// acceptance tests for the headline claims. Each figure/table bench
// performs the complete experiment per iteration and reports the key
// scalar it produces as a bench metric, so `go test -bench=.` doubles
// as the reproduction harness:
//
//	go test -bench=BenchmarkTableICapacity -benchtime=1x
package repro_test

import (
	"fmt"
	"io"
	"math"
	"runtime"
	"testing"

	"repro"
	"repro/internal/bench"
)

// TestBusyHourSizingCheck pins the paper's Sec. IV worked example:
// 3000 calls/busy-hour × 3 min on a 165-channel server blocks ≈1.8%.
func TestBusyHourSizingCheck(t *testing.T) {
	s := bench.Sizing()
	if s.Erlangs != 150 {
		t.Fatalf("traffic = %v Erlangs, want 150", s.Erlangs)
	}
	if math.Abs(s.Pb-0.018) > 0.004 {
		t.Errorf("Pb = %.4f, paper reports ~0.018", s.Pb)
	}
}

// TestAbstractClaim pins the abstract: "more than 160 concurrent voice
// calls with a blocking probability of less than 5% while providing
// voice calls with average MOS above 4".
func TestAbstractClaim(t *testing.T) {
	// Analytically: 160 Erlangs on 165 channels is under 5%.
	if pb := repro.ErlangB(160, repro.DefaultCapacity); pb >= 0.05 {
		t.Errorf("B(160,165) = %.4f, want < 0.05", pb)
	}
	// Empirically: the simulated testbed at A=160 keeps blocking under
	// 10% (paper measured 6%) and MOS above 4.
	res := repro.Run(repro.Experiment{Workload: 160, Capacity: repro.DefaultCapacity, Seed: 160})
	if pb := res.BlockingProbability(); pb >= 0.10 {
		t.Errorf("empirical Pb at A=160 = %.4f", pb)
	}
	if m := res.MOS.Mean(); m <= 4.0 {
		t.Errorf("mean MOS = %.3f, want > 4", m)
	}
}

// TestCallSetupMessageFlow pins Fig. 2 / Sec. IV: 9 SIP messages to
// establish a call through the PBX and 4 to tear it down (13 total).
func TestCallSetupMessageFlow(t *testing.T) {
	res := repro.Run(repro.Experiment{Workload: 2, Capacity: 165, Seed: 2})
	est := uint64(res.Load.Established)
	if est == 0 {
		t.Fatal("no calls established")
	}
	// Subtract the fixed registration traffic (2 phones × 3 msgs:
	// REGISTER, 401, REGISTER, 200 = 8 total... counted exactly below).
	regMsgs := res.Capture.Total - 13*est
	if regMsgs != 8 {
		t.Errorf("per-call SIP messages != 13: total %d for %d calls (residue %d, want 8 registration msgs)",
			res.Capture.Total, est, regMsgs)
	}
}

func BenchmarkFig3ErlangBCurves(b *testing.B) {
	var curves []bench.Fig3Curve
	for i := 0; i < b.N; i++ {
		curves = bench.Fig3(260)
	}
	// Report the paper's operating point.
	b.ReportMetric(curves[7].Pb[164]*100, "Pb@160E,N165,%")
	if testing.Verbose() {
		bench.WriteFig3(benchOut(b), curves)
	}
}

// BenchmarkTableICapacity regenerates Table I with full packetized
// media — every 20 ms RTP frame of every call simulated end to end.
// One iteration is the whole six-workload experiment (~10⁷ events).
func BenchmarkTableICapacity(b *testing.B) {
	var cols []bench.TableIColumn
	for i := 0; i < b.N; i++ {
		cols = bench.TableI(bench.TableIOptions{Seed: uint64(i) + 1})
	}
	last := cols[len(cols)-1].Result
	b.ReportMetric(last.BlockingProbability()*100, "Pb@240E,%")
	b.ReportMetric(last.MOS.Mean(), "MOS@240E")
	b.ReportMetric(last.CPUMean, "CPU@240E,%")
	if testing.Verbose() {
		bench.WriteTableI(benchOut(b), cols)
	}
}

// BenchmarkTableIFlow is the same harness with flow-level media — the
// fast path for iterating on the experiment itself.
func BenchmarkTableIFlow(b *testing.B) {
	var cols []bench.TableIColumn
	for i := 0; i < b.N; i++ {
		cols = bench.TableI(bench.TableIOptions{FlowMedia: true, Seed: uint64(i) + 1})
	}
	b.ReportMetric(cols[len(cols)-1].Result.BlockingProbability()*100, "Pb@240E,%")
}

func BenchmarkFig6EmpiricalVsAnalytical(b *testing.B) {
	var points []bench.Fig6Point
	for i := 0; i < b.N; i++ {
		points = bench.Fig6(bench.Fig6Options{Reps: 3, Seed: uint64(i) + 1})
	}
	// The last point (A=260) against the N=165 overlay.
	last := points[len(points)-1]
	b.ReportMetric(last.Empirical*100, "empirical,%")
	b.ReportMetric(last.Analytical[165]*100, "erlangB165,%")
	if testing.Verbose() {
		bench.WriteFig6(benchOut(b), points, []int{160, 165, 170})
	}
}

func BenchmarkFig7Population(b *testing.B) {
	var curves []bench.Fig7Curve
	for i := 0; i < b.N; i++ {
		curves = bench.Fig7(8000, 165)
	}
	// 60% of the population at 2.5 minutes: the paper's ~21% point.
	b.ReportMetric(curves[1].Points[59].Pb*100, "Pb@60%,2.5min,%")
	if testing.Verbose() {
		bench.WriteFig7(benchOut(b), curves, 8000, 165)
	}
}

func BenchmarkSizingCheck(b *testing.B) {
	var s bench.SizingCheck
	for i := 0; i < b.N; i++ {
		s = bench.Sizing()
	}
	b.ReportMetric(s.Pb*100, "Pb,%")
}

// Ablation benches for the design choices DESIGN.md calls out.

func BenchmarkAblationAdmission(b *testing.B) {
	var ab bench.AdmissionAblation
	for i := 0; i < b.N; i++ {
		ab = bench.RunAdmissionAblation(240, uint64(i)+1)
	}
	b.ReportMetric(ab.ChannelCap.BlockingProbability()*100, "cap165-Pb,%")
	b.ReportMetric(ab.CPUAdmitted.BlockingProbability()*100, "cpu50-Pb,%")
	if testing.Verbose() {
		bench.WriteAdmissionAblation(benchOut(b), ab)
	}
}

func BenchmarkAblationMediaModel(b *testing.B) {
	var ab bench.MediaAblation
	for i := 0; i < b.N; i++ {
		ab = bench.RunMediaAblation(uint64(i) + 1)
	}
	b.ReportMetric(ab.PacketizedMOS, "packetizedMOS")
	b.ReportMetric(ab.FlowMOS, "flowMOS")
	b.ReportMetric(float64(ab.PacketizedEvents)/float64(ab.FlowEvents), "eventRatio")
	if testing.Verbose() {
		bench.WriteMediaAblation(benchOut(b), ab)
	}
}

func BenchmarkAblationArrivals(b *testing.B) {
	var ab bench.ArrivalAblation
	for i := 0; i < b.N; i++ {
		ab = bench.RunArrivalAblation(200, 2, uint64(i)+1)
	}
	b.ReportMetric(ab.PoissonBlocking*100, "poisson-Pb,%")
	b.ReportMetric(ab.UniformBlocking*100, "uniform-Pb,%")
	if testing.Verbose() {
		bench.WriteArrivalAblation(benchOut(b), ab)
	}
}

func BenchmarkAblationHoldTime(b *testing.B) {
	var ab bench.HoldAblation
	for i := 0; i < b.N; i++ {
		ab = bench.RunHoldAblation(200, 2, uint64(i)+1)
	}
	b.ReportMetric(ab.FixedBlocking*100, "fixed-Pb,%")
	b.ReportMetric(ab.ExponentialBlocking*100, "exp-Pb,%")
	if testing.Verbose() {
		bench.WriteHoldAblation(benchOut(b), ab)
	}
}

// BenchmarkClusterScaling measures the Sec. IV scale-out alternative:
// blocking vs number of 165-channel servers at A=240, under both
// placement policies, against the pooled and split Erlang-B bounds.
func BenchmarkClusterScaling(b *testing.B) {
	var cs bench.ClusterScaling
	for i := 0; i < b.N; i++ {
		cs = bench.RunClusterScaling(240, 165, 3, uint64(i)+1)
	}
	for _, p := range cs.Points {
		if p.Servers == 2 && p.Policy.String() == "least-busy" {
			b.ReportMetric(p.Measured*100, "k2-leastbusy-Pb,%")
		}
	}
	if testing.Verbose() {
		bench.WriteClusterScaling(benchOut(b), cs)
	}
}

// BenchmarkWiFiImpairment sweeps the VoWiFi radio conditions the
// paper's deployment motivates, measuring per-call MOS with the full
// packetized media path.
func BenchmarkWiFiImpairment(b *testing.B) {
	var results []bench.WiFiResult
	for i := 0; i < b.N; i++ {
		results = bench.WiFiStudy(uint64(i) + 1)
	}
	b.ReportMetric(results[0].MOS.Mean(), "wiredMOS")
	b.ReportMetric(results[len(results)-1].MOS.Mean(), "congestedMOS")
	if testing.Verbose() {
		bench.WriteWiFiStudy(benchOut(b), results)
	}
}

// Micro-benchmarks of the experiment engine itself.

func BenchmarkExperimentSignalling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := repro.Run(repro.Experiment{Workload: 120, Capacity: 165, Seed: uint64(i) + 1})
		b.ReportMetric(float64(res.Events), "events/run")
	}
}

func BenchmarkExperimentPacketized(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := repro.Run(repro.Experiment{
			Workload: 40, Capacity: 165, Media: repro.MediaPacketized, Seed: uint64(i) + 1,
		})
		b.ReportMetric(float64(res.Events), "events/run")
	}
}

// BenchmarkExperimentPacketizedSharded measures the partitioned engine
// at the Table I saturation point (A=200 E, packetized RTP). Each shard
// count replicates the workload across that many isolated islands — one
// island per shard — so the per-shard work is identical and events/sec
// is the honest throughput metric. shards=1 is the classic
// single-scheduler engine, the baseline bench-check tracks.
func BenchmarkExperimentPacketizedSharded(b *testing.B) {
	for _, shards := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := repro.Experiment{
					Workload: 200, Capacity: 165, Media: repro.MediaPacketized, Seed: uint64(i) + 1,
				}
				if shards > 1 {
					cfg.Shards = shards
					cfg.Islands = shards
				}
				res := repro.Run(cfg)
				b.ReportMetric(float64(res.Events), "events/run")
				if s := res.Elapsed.Seconds(); s > 0 {
					b.ReportMetric(float64(res.Events)/s, "events/sec")
				}
			}
		})
	}
}

// TestShardScalingOnMultiCore asserts the tentpole speedup target —
// ≥2.5× events/sec at shards=4 over the single-scheduler engine — on
// hosts that can actually express it. A conservative-lookahead engine
// cannot beat its own barrier overhead on one core, so the check skips
// below 4 CPUs (the 1-core differential suite still pins correctness).
func TestShardScalingOnMultiCore(t *testing.T) {
	if n := runtime.NumCPU(); n < 4 {
		t.Skipf("need >= 4 CPUs to measure shard scaling, have %d", n)
	}
	if testing.Short() {
		t.Skip("scaling measurement is slow")
	}
	ss := bench.ShardScalingTable(bench.ShardScalingOptions{ShardCounts: []int{1, 4}})
	last := ss.Points[len(ss.Points)-1]
	if last.Speedup < 2.5 {
		t.Errorf("shards=4 speedup %.2fx, want >= 2.5x (%.0f -> %.0f events/sec on %d cores)",
			last.Speedup, ss.Points[0].EventsPerSec, last.EventsPerSec, ss.Cores)
	}
}

func BenchmarkErlangBFormula(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = repro.ErlangB(160, 165)
	}
}

// benchOut writes tables under -v without polluting metric parsing.
func benchOut(b *testing.B) io.Writer {
	return testWriter{b}
}

type testWriter struct{ b *testing.B }

func (w testWriter) Write(p []byte) (int, error) {
	w.b.Log(string(p))
	return len(p), nil
}
